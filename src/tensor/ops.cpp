#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"

namespace bnsgcn::ops {

namespace {

// Block sizes chosen for L1/L2 friendliness at the feature widths used by the
// models (64-612 columns). Correctness does not depend on them; neither does
// bitwise output — kBlockM is also the parallel_for grain for the row-split
// kernels, and every output element's accumulation runs to completion inside
// one block (common/thread_pool.hpp, determinism contract).
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;

// Column grain for the scatter-shaped kernels (scatter_add_rows here, the
// halo folds in nn/layer.cpp): destination rows repeat, so those kernels
// split the feature axis instead — each lane walks the full entry list but
// owns a disjoint column range, keeping the per-element entry order intact.
constexpr std::int64_t kBlockCols = 64;

} // namespace

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  BNSGCN_CHECK(c.rows() == a.rows());
  gemm_nn_rows(a, b, c, 0, a.rows(), alpha, beta);
}

void gemm_nn_rows(const Matrix& a, const Matrix& b, Matrix& c,
                  std::int64_t r0, std::int64_t r1, float alpha, float beta) {
  const std::int64_t k = a.cols(), n = b.cols();
  BNSGCN_CHECK(b.rows() == k);
  BNSGCN_CHECK(c.cols() == n);
  BNSGCN_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.rows() && r1 <= c.rows());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // The k-accumulation order per row is fixed by the k0/kk loops alone, so
  // any [r0, r1) slicing produces bit-identical rows to the full call — and
  // the same argument makes the kBlockM row blocks thread-safe lanes: each
  // owns disjoint rows of C and computes them in the serial kernel's order.
  // Blocks stay anchored at r0, matching the serial i0 tiling exactly.
  common::for_blocks(r1 - r0, kBlockM, [&](std::int64_t b0, std::int64_t b1) {
    const std::int64_t i0 = r0 + b0;
    const std::int64_t i1 = r0 + b1;
    if (beta == 0.0f) {
      std::fill(pc + i0 * n, pc + i1 * n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t t = i0 * n; t < i1 * n; ++t) pc[t] *= beta;
    }
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * pa[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  BNSGCN_CHECK(b.rows() == m);
  BNSGCN_CHECK(c.rows() == k && c.cols() == n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // C[kk,j] += A[i,kk] * B[i,j]: stream rows of A and B together. Lanes
  // split the kk axis (disjoint rows of C); the i loop stays outermost
  // inside each lane, so every C element still accumulates in ascending-i
  // order with the same av==0 skips — bit-identical for any lane count.
  // (The skip must be preserved, not just cheap: adding a 0.0f term is not
  // bitwise-neutral when the accumulator holds -0.0f.)
  common::for_blocks(k, kBlockM, [&](std::int64_t kk0, std::int64_t kk1) {
    if (beta == 0.0f) {
      std::fill(pc + kk0 * n, pc + kk1 * n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t t = kk0 * n; t < kk1 * n; ++t) pc[t] *= beta;
    }
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      const float* brow = pb + i * n;
      for (std::int64_t kk = kk0; kk < kk1; ++kk) {
        const float av = alpha * arow[kk];
        if (av == 0.0f) continue;
        float* crow = pc + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, float alpha,
             float beta) {
  const std::int64_t m = a.rows(), n = a.cols(), k = b.rows();
  BNSGCN_CHECK(b.cols() == n);
  BNSGCN_CHECK(c.rows() == m && c.cols() == k);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // C[i,j] = dot(A.row(i), B.row(j)) — both walks are contiguous, and each
  // output row is an independent set of local dot products, so the row
  // split is trivially bit-stable.
  common::for_blocks(m, kBlockM, [&](std::int64_t i0, std::int64_t i1) {
    if (beta == 0.0f) {
      std::fill(pc + i0 * k, pc + i1 * k, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t t = i0 * k; t < i1 * k; ++t) pc[t] *= beta;
    }
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * n;
      float* crow = pc + i * k;
      for (std::int64_t j = 0; j < k; ++j) {
        const float* brow = pb + j * n;
        float acc = 0.0f;
        for (std::int64_t t = 0; t < n; ++t) acc += arow[t] * brow[t];
        crow[j] += alpha * acc;
      }
    }
  });
}

void add_inplace(Matrix& y, const Matrix& x) {
  BNSGCN_CHECK(y.rows() == x.rows() && y.cols() == x.cols());
  float* py = y.data();
  const float* px = x.data();
  const std::int64_t n = y.size();
  // lint: allow(float-accum) — element-wise y[i] += x[i]; no cross-element
  // reduction, order-independent by construction.
  for (std::int64_t i = 0; i < n; ++i) py[i] += px[i];
}

void axpy(float a, const Matrix& x, Matrix& y) {
  BNSGCN_CHECK(y.size() == x.size());
  float* py = y.data();
  const float* px = x.data();
  const std::int64_t n = y.size();
  // lint: allow(float-accum) — element-wise y[i] += a*x[i]; order-independent.
  for (std::int64_t i = 0; i < n; ++i) py[i] += a * px[i];
}

void scale_inplace(Matrix& y, float s) {
  float* py = y.data();
  const std::int64_t n = y.size();
  for (std::int64_t i = 0; i < n; ++i) py[i] *= s;
}

void add_row_bias(Matrix& x, const Matrix& bias) {
  add_row_bias_rows(x, bias, 0, x.rows());
}

void add_row_bias_rows(Matrix& x, const Matrix& bias, std::int64_t r0,
                       std::int64_t r1) {
  BNSGCN_CHECK(bias.rows() == 1 && bias.cols() == x.cols());
  BNSGCN_CHECK(0 <= r0 && r0 <= r1 && r1 <= x.rows());
  const float* pb = bias.data();
  for (std::int64_t r = r0; r < r1; ++r) {
    float* row = x.data() + r * x.cols();
    // lint: allow(float-accum) — element-wise bias add; order-independent.
    for (std::int64_t c = 0; c < x.cols(); ++c) row[c] += pb[c];
  }
}

void col_sum(const Matrix& grad, Matrix& out) {
  BNSGCN_CHECK(out.rows() == 1 && out.cols() == grad.cols());
  float* po = out.data();
  for (std::int64_t r = 0; r < grad.rows(); ++r) {
    const float* row = grad.data() + r * grad.cols();
    // lint: allow(float-accum) — serial reduction in fixed ascending row order;
    // single-threaded by contract (bias grads are tiny), so the order is fixed.
    for (std::int64_t c = 0; c < grad.cols(); ++c) po[c] += row[c];
  }
}

void relu_forward(Matrix& x, Matrix& mask) {
  mask.resize(x.rows(), x.cols());
  float* px = x.data();
  float* pm = mask.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    if (px[i] > 0.0f) {
      pm[i] = 1.0f;
    } else {
      px[i] = 0.0f;
      pm[i] = 0.0f;
    }
  }
}

void relu_backward(Matrix& grad, const Matrix& mask) {
  BNSGCN_CHECK(grad.size() == mask.size());
  float* pg = grad.data();
  const float* pm = mask.data();
  const std::int64_t n = grad.size();
  for (std::int64_t i = 0; i < n; ++i) pg[i] *= pm[i];
}

void relu_forward(Matrix& x) {
  float* px = x.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    if (px[i] <= 0.0f) px[i] = 0.0f;
  }
}

void leaky_relu_forward(Matrix& x, Matrix& mask, float slope) {
  mask.resize(x.rows(), x.cols());
  float* px = x.data();
  float* pm = mask.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    if (px[i] > 0.0f) {
      pm[i] = 1.0f;
    } else {
      px[i] *= slope;
      pm[i] = slope;
    }
  }
}

void leaky_relu_backward(Matrix& grad, const Matrix& mask) {
  relu_backward(grad, mask); // same elementwise multiply
}

void dropout_forward(Matrix& x, Matrix& mask, float p, Rng& rng) {
  BNSGCN_CHECK(p >= 0.0f && p < 1.0f);
  mask.resize(x.rows(), x.cols());
  if (p == 0.0f) {
    mask.fill(1.0f);
    return;
  }
  const float keep_scale = 1.0f / (1.0f - p);
  float* px = x.data();
  float* pm = mask.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.next_float() < p) {
      px[i] = 0.0f;
      pm[i] = 0.0f;
    } else {
      px[i] *= keep_scale;
      pm[i] = keep_scale;
    }
  }
}

void dropout_backward(Matrix& grad, const Matrix& mask) {
  relu_backward(grad, mask); // elementwise multiply by stored multiplier
}

void softmax_rows(Matrix& x) {
  for (std::int64_t r = 0; r < x.rows(); ++r) {
    float* row = x.data() + r * x.cols();
    float mx = row[0];
    for (std::int64_t c = 1; c < x.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < x.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c]; // lint: allow(float-accum) — serial per-row sum, fixed order
    }
    const float inv = 1.0f / sum;
    for (std::int64_t c = 0; c < x.cols(); ++c) row[c] *= inv;
  }
}

void gather_rows(const Matrix& src, std::span<const NodeId> idx, Matrix& out) {
  out.resize(static_cast<std::int64_t>(idx.size()), src.cols());
  const std::int64_t d = src.cols();
  const auto n = static_cast<std::int64_t>(idx.size());
  common::for_blocks(n, kBlockM, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const NodeId r = idx[static_cast<std::size_t>(i)];
      BNSGCN_BOUNDS(r, src.rows());
      const float* s = src.data() + static_cast<std::int64_t>(r) * d;
      std::copy(s, s + d, out.data() + i * d);
    }
  });
}

void scatter_add_rows(const Matrix& src, std::span<const NodeId> idx,
                      Matrix& dst) {
  BNSGCN_CHECK(src.rows() == static_cast<std::int64_t>(idx.size()));
  BNSGCN_CHECK(src.cols() == dst.cols());
  const std::int64_t d = src.cols();
  if constexpr (kCheckedBuild) {
    for (std::size_t i = 0; i < idx.size(); ++i)
      BNSGCN_BOUNDS(idx[i], dst.rows());
  }
  // idx may repeat destination rows, so lanes split the feature axis: each
  // walks the whole index list (entry order — and with it each element's
  // accumulation order — unchanged) but owns a disjoint column range.
  common::for_blocks(d, kBlockCols, [&](std::int64_t c0, std::int64_t c1) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const float* s = src.data() + static_cast<std::int64_t>(i) * d;
      float* t = dst.data() + static_cast<std::int64_t>(idx[i]) * d;
      for (std::int64_t c = c0; c < c1; ++c) t[c] += s[c];
    }
  });
}

void concat_cols(const Matrix& a, const Matrix& b, Matrix& out) {
  BNSGCN_CHECK(a.rows() == b.rows());
  out.resize(a.rows(), a.cols() + b.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float* o = out.data() + r * out.cols();
    const float* pa = a.data() + r * a.cols();
    const float* pb = b.data() + r * b.cols();
    std::copy(pa, pa + a.cols(), o);
    std::copy(pb, pb + b.cols(), o + a.cols());
  }
}

void split_cols(const Matrix& out, Matrix& a, Matrix& b, std::int64_t a_cols) {
  BNSGCN_CHECK(a_cols >= 0 && a_cols <= out.cols());
  const std::int64_t b_cols = out.cols() - a_cols;
  a.resize(out.rows(), a_cols);
  b.resize(out.rows(), b_cols);
  for (std::int64_t r = 0; r < out.rows(); ++r) {
    const float* o = out.data() + r * out.cols();
    std::copy(o, o + a_cols, a.data() + r * a_cols);
    std::copy(o + a_cols, o + out.cols(), b.data() + r * b_cols);
  }
}

void glorot_init(Matrix& w, Rng& rng) {
  const auto fan = static_cast<float>(w.rows() + w.cols());
  const float stddev = std::sqrt(2.0f / fan);
  w.randomize_gaussian(rng, stddev);
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  BNSGCN_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i)
    mx = std::max(mx, std::abs(pa[i] - pb[i]));
  return mx;
}

double frobenius_norm_sq(const Matrix& a) {
  double acc = 0.0;
  const float* pa = a.data();
  // lint: allow(float-accum) — serial double-precision reduction, fixed order.
  for (std::int64_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(pa[i]) * static_cast<double>(pa[i]);
  return acc;
}

} // namespace bnsgcn::ops
