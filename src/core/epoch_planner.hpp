#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/local_graph.hpp"

namespace bnsgcn::core {

/// Which random subgraph is drawn each epoch (Section 3.2 / Section 4.3).
/// Each variant is implemented by an EpochPlanner below; the enum remains
/// the config-level selector for the built-in strategies.
enum class SamplingVariant {
  kBns,          // the paper's method: drop boundary *nodes* w.p. 1-p
  kBoundaryEdge, // BES ablation: drop boundary *edges* w.p. 1-q (Table 9)
  kDropEdge,     // DropEdge ablation: drop *any* edge w.p. 1-q (Table 9)
};

/// One epoch's random draw over a rank's local graph: which halo nodes (and
/// optionally which arcs) survive, plus the unbiased-estimator scales the
/// compaction must apply. Strategy output only — the exchange negotiation
/// and CSR compaction live in BoundarySampler.
struct EpochDraw {
  std::vector<char> halo_kept;                // size n_halo, 0/1
  /// Arc-level keep mask over the local adjacency (same indexing as
  /// LocalGraph::adj.nbrs). Disengaged for node-level strategies, which
  /// also lets the compaction skip building a per-edge scale vector.
  std::optional<std::vector<char>> edge_kept;
  float halo_scale = 1.0f;       // applied to received halo feature rows
  float halo_edge_scale = 1.0f;  // edge_scale of surviving halo arcs
  float inner_edge_scale = 1.0f; // edge_scale of surviving inner arcs
};

/// Pluggable per-epoch sampling strategy (Algorithm 1 line 4 generalized).
/// Implementations must be pure functions of (lg, rng): all cross-rank
/// coordination is derived from the draw by the sampler, so a strategy
/// never touches the fabric and new strategies are additive.
class EpochPlanner {
 public:
  struct Options {
    float rate = 1.0f;            // p (node keep) or q (edge keep)
    bool unbiased_scaling = true; // scale kept contributions by 1/rate
  };

  virtual ~EpochPlanner() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual EpochDraw draw(const LocalGraph& lg,
                                       Rng& rng) const = 0;
};

/// BNS (Section 3.2): keep each halo node w.p. p; surviving received rows
/// are scaled by 1/p when unbiased scaling is on.
class BnsPlanner final : public EpochPlanner {
 public:
  explicit BnsPlanner(const Options& opts) : opts_(opts) {}
  [[nodiscard]] const char* name() const override { return "bns"; }
  [[nodiscard]] EpochDraw draw(const LocalGraph& lg, Rng& rng) const override;

 private:
  Options opts_;
};

/// BES ablation (Section 4.3): keep each *boundary* arc w.p. q; a halo node
/// survives iff at least one incident arc survives.
class BoundaryEdgePlanner final : public EpochPlanner {
 public:
  explicit BoundaryEdgePlanner(const Options& opts) : opts_(opts) {}
  [[nodiscard]] const char* name() const override { return "boundary-edge"; }
  [[nodiscard]] EpochDraw draw(const LocalGraph& lg, Rng& rng) const override;

 private:
  Options opts_;
};

/// DropEdge ablation: keep every arc (inner ones too) w.p. q.
class DropEdgePlanner final : public EpochPlanner {
 public:
  explicit DropEdgePlanner(const Options& opts) : opts_(opts) {}
  [[nodiscard]] const char* name() const override { return "drop-edge"; }
  [[nodiscard]] EpochDraw draw(const LocalGraph& lg, Rng& rng) const override;

 private:
  Options opts_;
};

/// Factory for the built-in strategies.
[[nodiscard]] std::unique_ptr<EpochPlanner> make_planner(
    SamplingVariant variant, const EpochPlanner::Options& opts);

} // namespace bnsgcn::core
