#include "graph/fingerprint.hpp"

#include <cstdio>

namespace bnsgcn {

namespace {

/// One 64-bit mixing lane (splitmix64-style finalizer folded into a
/// running state). Written from first principles, like Rng, so the value
/// is identical across standard libraries and platforms.
struct Lane {
  std::uint64_t h;

  explicit Lane(std::uint64_t seed) : h(seed) {}

  void mix(std::uint64_t x) {
    x *= 0x9E3779B97F4A7C15ULL;
    x ^= x >> 32;
    h ^= x;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 29;
  }

  [[nodiscard]] std::uint64_t finish() const {
    std::uint64_t x = h;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }
};

} // namespace

std::string GraphFingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

GraphFingerprint fingerprint(const Csr& g) {
  // Two independently seeded lanes over the same stream: a 128-bit value
  // makes accidental collisions across a cache's lifetime negligible.
  Lane a(0x8F2D1A6B'C3E47051ULL ^ kFingerprintVersion);
  Lane b(0x1B873593'CC9E2D51ULL ^ kFingerprintVersion);
  const auto feed = [&](std::uint64_t x) {
    a.mix(x);
    b.mix(~x);
  };

  // Length-prefix every section so (offsets, nbrs) boundaries cannot
  // alias: e.g. shrinking offsets while growing nbrs changes the prefix.
  feed(static_cast<std::uint64_t>(g.n));
  feed(g.offsets.size());
  for (const EdgeId o : g.offsets) feed(static_cast<std::uint64_t>(o));
  feed(g.nbrs.size());
  // Pack two 32-bit neighbor ids per mix step: halves the multiply count
  // on the dominant array without weakening sensitivity (each id still
  // lands in a distinct bit range of the word).
  std::size_t i = 0;
  for (; i + 1 < g.nbrs.size(); i += 2) {
    feed((static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.nbrs[i]))
          << 32) |
         static_cast<std::uint32_t>(g.nbrs[i + 1]));
  }
  if (i < g.nbrs.size())
    feed(static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.nbrs[i])));

  return {a.finish(), b.finish()};
}

} // namespace bnsgcn
