#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bnsgcn {

/// Walker alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution. Used by the graph generators (degree-weighted
/// endpoint selection) and by the importance samplers (FastGCN / LADIES).
class AliasTable {
 public:
  AliasTable() = default;

  /// Build from non-negative weights. At least one weight must be > 0.
  explicit AliasTable(const std::vector<double>& weights);

  /// Sample an index with probability weights[i] / sum(weights).
  [[nodiscard]] NodeId sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }
  [[nodiscard]] bool empty() const { return prob_.empty(); }

  /// Probability of index i (for inverse-probability reweighting).
  [[nodiscard]] double probability(NodeId i) const {
    return normalized_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<double> prob_;       // acceptance probability per bucket
  std::vector<NodeId> alias_;      // alias index per bucket
  std::vector<double> normalized_; // original weights / sum
};

} // namespace bnsgcn
