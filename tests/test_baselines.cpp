#include <gtest/gtest.h>

#include "baselines/minibatch.hpp"
#include "graph/dataset.hpp"

namespace bnsgcn {
namespace {

Dataset easy_dataset(std::uint64_t seed = 3) {
  SyntheticSpec spec;
  spec.n = 1200;
  spec.m = 14000;
  spec.communities = 6;
  spec.num_classes = 6;
  spec.feat_dim = 16;
  spec.p_intra = 0.92;
  spec.feature_noise = 1.2;
  spec.seed = seed;
  return make_synthetic(spec);
}

core::TrainerConfig fast_trainer() {
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.epochs = 25;
  cfg.seed = 9;
  return cfg;
}

baselines::MinibatchConfig fast_minibatch() {
  baselines::MinibatchConfig mb;
  mb.lr = 0.01f;
  mb.batches_per_epoch = 4;
  mb.batch_size = 256;
  return mb;
}

TEST(FullGraph, ConvergesOnEasyDataset) {
  const Dataset ds = easy_dataset();
  core::TrainerConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden = 32;
  cfg.epochs = 30;
  cfg.lr = 0.01f;
  cfg.seed = 1;
  const auto result = baselines::train_full_graph(ds, cfg);
  EXPECT_GT(result.final_test, 0.75);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(NeighborSampling, Converges) {
  const Dataset ds = easy_dataset(5);
  const auto result =
      baselines::train_neighbor_sampling(ds, fast_trainer(), fast_minibatch());
  EXPECT_GT(result.final_test, 0.55);
  EXPECT_GT(result.sample_time_s(), 0.0);
}

TEST(LayerSampling, FastGcnConverges) {
  const Dataset ds = easy_dataset(7);
  auto mb = fast_minibatch();
  mb.layer_budget = 600;
  const auto result =
      baselines::train_layer_sampling(ds, fast_trainer(), mb, false);
  EXPECT_GT(result.final_test, 0.45);
}

TEST(LayerSampling, LadiesConverges) {
  const Dataset ds = easy_dataset(7);
  auto mb = fast_minibatch();
  mb.layer_budget = 600;
  const auto result =
      baselines::train_layer_sampling(ds, fast_trainer(), mb, true);
  EXPECT_GT(result.final_test, 0.5);
}

TEST(LayerSampling, LadiesBeatsOrMatchesFastGcnLoss) {
  // Same budget: restricting the pool to the neighbor set cannot hurt the
  // estimator (Table 2 ordering), which shows up as faster loss descent.
  const Dataset ds = easy_dataset(11);
  auto cfg = fast_trainer();
  cfg.epochs = 15;
  auto mb = fast_minibatch();
  mb.layer_budget = 300;
  const auto fast = baselines::train_layer_sampling(ds, cfg, mb, false);
  const auto ladies = baselines::train_layer_sampling(ds, cfg, mb, true);
  EXPECT_LE(ladies.train_loss.back(), fast.train_loss.back() * 1.3);
}

TEST(ClusterGcn, Converges) {
  const Dataset ds = easy_dataset(13);
  auto mb = fast_minibatch();
  mb.num_clusters = 12;
  mb.clusters_per_batch = 3;
  const auto result = baselines::train_cluster_gcn(ds, fast_trainer(), mb);
  EXPECT_GT(result.final_test, 0.55);
}

TEST(GraphSaint, Converges) {
  const Dataset ds = easy_dataset(17);
  auto mb = fast_minibatch();
  mb.saint_budget = 500;
  const auto result = baselines::train_graph_saint(ds, fast_trainer(), mb);
  EXPECT_GT(result.final_test, 0.5);
}

TEST(Baselines, MultilabelSupport) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.m = 6000;
  spec.communities = 8;
  spec.num_classes = 8;
  spec.feat_dim = 16;
  spec.multilabel = true;
  spec.seed = 19;
  const Dataset ds = make_synthetic(spec);
  auto cfg = fast_trainer();
  cfg.epochs = 20;
  const auto result =
      baselines::train_neighbor_sampling(ds, cfg, fast_minibatch());
  EXPECT_GT(result.final_test, 0.3);
}

TEST(Baselines, ReportFieldsPopulated) {
  const Dataset ds = easy_dataset(23);
  auto cfg = fast_trainer();
  cfg.epochs = 5;
  const auto result =
      baselines::train_graph_saint(ds, cfg, fast_minibatch());
  EXPECT_EQ(result.method, "graph-saint");
  EXPECT_EQ(result.dataset, ds.name);
  EXPECT_EQ(result.num_epochs(), 5);
  EXPECT_EQ(result.epochs.size(), 5u);
  EXPECT_GT(result.wall_time_s, 0.0);
  EXPECT_GT(result.epoch_time_s(), 0.0);
  EXPECT_GT(result.wall_epoch_s(), 0.0);
  EXPECT_GE(result.sampler_overhead(), 0.0);
  EXPECT_LE(result.sampler_overhead(), 1.0);
  // Minibatch methods run single-process: no fabric traffic.
  EXPECT_EQ(result.mean_epoch().feature_bytes, 0);
  EXPECT_TRUE(result.memory.model_bytes.empty());
}

TEST(Baselines, ObserverStreamsEpochs) {
  const Dataset ds = easy_dataset(29);
  auto cfg = fast_trainer();
  cfg.epochs = 6;
  cfg.eval_every = 3;
  std::vector<int> seen;
  int evals = 0;
  cfg.observer = [&](const core::EpochSnapshot& snap) {
    seen.push_back(snap.epoch);
    if (snap.eval != nullptr) ++evals;
  };
  const auto result =
      baselines::train_neighbor_sampling(ds, cfg, fast_minibatch());
  ASSERT_EQ(seen.size(), 6u);
  for (int e = 0; e < 6; ++e) EXPECT_EQ(seen[static_cast<std::size_t>(e)], e + 1);
  EXPECT_EQ(evals, 2);  // epochs 3 and 6
  EXPECT_EQ(result.curve.size(), 2u);
}

} // namespace
} // namespace bnsgcn
