#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace bnsgcn {

/// Assignment of every node to one of `nparts` partitions.
struct Partitioning {
  PartId nparts = 0;
  std::vector<PartId> owner; // size n, values in [0, nparts)

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(owner.size());
  }

  /// Inner node lists per partition (sorted by global id).
  [[nodiscard]] std::vector<std::vector<NodeId>> members() const;

  /// Invariants: every owner id in range, every partition non-empty.
  void validate() const;
};

/// Uniform random assignment — the paper's "random partition" ablation
/// (Tables 7–8). Guarantees non-empty partitions for n >= nparts.
[[nodiscard]] Partitioning random_partition(NodeId n, PartId nparts, Rng& rng);

/// Deterministic hash assignment (mod nparts) — a cheap, seedless baseline.
[[nodiscard]] Partitioning hash_partition(NodeId n, PartId nparts);

/// Contiguous BFS growing from random seeds; balanced sizes, locality-aware
/// but no refinement. Midpoint between random and metis_like in quality.
[[nodiscard]] Partitioning bfs_partition(const Csr& g, PartId nparts, Rng& rng);

} // namespace bnsgcn
