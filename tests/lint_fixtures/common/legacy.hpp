#include <string>

using namespace std;

inline string shout(const string& s) { return s + "!"; }
