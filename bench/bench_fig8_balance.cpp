// Figure 8: per-partition memory balance on papers100M-like with 192
// partitions, normalized to the largest partition, per sampling rate.
// Expected shape: at p=1 a straggler forces ~20% extra memory while most
// partitions sit below 60% of it; p=0.1/0.01 pack partitions above ~70%.

#include <algorithm>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 8",
                      "normalized per-partition memory, 192 partitions");
  bench::ReportSink sink("Figure 8", opts);

  const auto pr = bench::load_preset("papers", opts.scale, opts);
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.partition.nparts = 192; // partitioned once, cached across p
  rcfg.trainer.epochs = opts.epochs_or(3);

  std::printf("%-8s %8s %8s %8s %8s %8s  (fraction of max partition)\n", "p",
              "min", "p25", "median", "p75", "max");
  for (const float p : {1.0f, 0.1f, 0.01f}) {
    rcfg.trainer.sample_rate = p;
    const auto& r = sink.add(bench::label("papers m=192 p=%.2f", p), rcfg,
                             api::run(pr.ds, rcfg));
    std::vector<double> mem = r.memory.model_bytes;
    const double mx = *std::max_element(mem.begin(), mem.end());
    for (auto& v : mem) v /= mx;
    std::sort(mem.begin(), mem.end());
    const auto pct = [&](double q) {
      return mem[static_cast<std::size_t>(q * (mem.size() - 1))];
    };
    std::printf("%-8.2f %8.3f %8.3f %8.3f %8.3f %8.3f\n", p, mem.front(),
                pct(0.25), pct(0.5), pct(0.75), mem.back());
  }
  std::printf("\npaper shape check: p=1 spreads wide (straggler); p<1 "
              "concentrates near 1.0.\n");
  return 0;
}
