// Table 4: test accuracy (Reddit-like, products-like) and test micro-F1
// (Yelp-like) of BNS-GCN across sampling rates p and partition counts,
// against the sampling-based baselines.
// Expected shape: p=1 matches or beats every sampler; p=0.1/0.01 matches or
// slightly beats p=1; p=0 is clearly worst; all stable across #partitions.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  const Dataset& ds = pr.ds;
  std::printf("\n--- %s ---\n", title);

  // Sampling-based baselines (single process, minibatch).
  api::RunConfig bcfg = pr.config();
  bcfg.trainer.epochs = opts.epochs_or(100);
  bcfg.minibatch.batch_size = std::max<NodeId>(256, ds.num_nodes() / 20);
  bcfg.minibatch.batches_per_epoch = 4;

  std::printf("%-28s %8s\n", "sampling-based method", "score%");
  for (const api::Method m :
       {api::Method::kNeighborSampling, api::Method::kFastGcn,
        api::Method::kLadies, api::Method::kClusterGcn,
        api::Method::kGraphSaint}) {
    bcfg.method = m;
    const auto& info = api::method_info(m);
    const auto& r = sink.add(bench::label("%s %s", preset, info.name.c_str()),
                             bcfg, api::run(ds, bcfg));
    std::printf("%-28s %8.2f\n", info.display.c_str(), 100.0 * r.final_test);
  }

  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = bcfg.trainer.epochs;
  std::printf("\n%-28s", "BNS-GCN \\ #partitions");
  for (const PartId m : parts) std::printf(" %8d", m);
  std::printf("\n");
  // The p-loop is outermost, so each m recurs 4 times: the partition
  // cache computes each once and serves the other three sweeps.
  for (const float p : {1.0f, 0.1f, 0.01f, 0.0f}) {
    std::printf("BNS-GCN (p=%-4.2f)%12s", p, "");
    for (const PartId m : parts) {
      rcfg.partition.nparts = m;
      rcfg.trainer.sample_rate = p;
      const auto& r = sink.add(bench::label("%s bns m=%d p=%.2f", preset, m, p),
                               rcfg, api::run(ds, rcfg));
      std::printf(" %8.2f", 100.0 * r.final_test);
    }
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 4", "test accuracy / micro-F1 across p and partitions");
  bench::ReportSink sink("Table 4", opts);
  const double s = opts.scale;

  run_dataset("Reddit-like (accuracy)", "reddit", 0.3 * s, {2, 4, 8}, opts,
              sink);
  run_dataset("ogbn-products-like (accuracy)", "products", 0.2 * s,
              {5, 8, 10}, opts, sink);
  run_dataset("Yelp-like (micro-F1)", "yelp", 0.3 * s, {3, 6, 10}, opts,
              sink);
  std::printf("\npaper shape check: BNS p>0 within ±0.3 of p=1; p=0 worst;\n"
              "full-graph training >= all sampling baselines.\n");
  return 0;
}
