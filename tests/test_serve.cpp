// Serving-path determinism and shutdown contracts (docs/ARCHITECTURE.md
// §10). The forward-only engine reuses the trainer's split-phase exchange
// verbatim, so served logits must be bit-identical across every axis that
// training is bit-identical across — transport (mailbox vs forked UDS
// processes), overlap mode, halo cache on/off — and additionally across
// request batching: the query stream is flat, so any (batch_size,
// num_batches) split of the same total serves the same queries in the
// same order and must produce the same bits.

#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>
#include <string>

#include "api/serve.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using comm::TimingSource;
using comm::TransportKind;

Dataset small_dataset(std::uint64_t seed = 71) {
  SyntheticSpec spec;
  spec.name = "serve-test";
  spec.n = 600;
  spec.m = 6000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 12;
  spec.p_intra = 0.9;
  spec.feature_noise = 1.0;
  spec.seed = seed;
  return make_synthetic(spec);
}

api::RunConfig base_config(core::ModelKind model) {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 4;
  cfg.trainer.seed = 9;
  cfg.trainer.sample_rate = 1.0f;
  cfg.trainer.model = model;
  cfg.trainer.gat_heads = model == core::ModelKind::kGat ? 2 : 1;
  return cfg;
}

api::ServeConfig serve_config(int batch_size, int num_batches) {
  api::ServeConfig scfg;
  scfg.batch_size = batch_size;
  scfg.num_batches = num_batches;
  scfg.seed = 2024;
  scfg.record_logits = true;
  return scfg;
}

void expect_same_bits(const api::ServeReport& a, const api::ServeReport& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.predictions, b.predictions);
  ASSERT_EQ(a.logits.size(), b.logits.size());
  for (std::size_t i = 0; i < a.logits.size(); ++i)
    ASSERT_EQ(a.logits[i], b.logits[i]) << "logit " << i;
}

TEST(Serve, BatchSizeInvariantBitwise) {
  // The same 16-query stream served as 16×1, 4×4 and 1×16 batches must
  // produce identical bits: one full-graph forward answers each batch, and
  // the forward does not depend on which queries ride it.
  const Dataset ds = small_dataset();
  const auto part = metis_like(ds.graph, 4);
  for (const auto model : {core::ModelKind::kSage, core::ModelKind::kGat}) {
    const auto cfg = base_config(model);
    const auto one = api::serve(ds, part, cfg, serve_config(1, 16));
    const auto four = api::serve(ds, part, cfg, serve_config(4, 4));
    const auto sixteen = api::serve(ds, part, cfg, serve_config(16, 1));
    ASSERT_EQ(one.total_queries(), 16);
    expect_same_bits(four, one,
                     model == core::ModelKind::kGat ? "gat 4x4 vs 1x16"
                                                    : "sage 4x4 vs 1x16");
    expect_same_bits(sixteen, one,
                     model == core::ModelKind::kGat ? "gat 16x1 vs 1x16"
                                                    : "sage 16x1 vs 1x16");
  }
}

TEST(Serve, TransportInvariantBitwise) {
  // Mailbox (in-process threads, simulated timing) vs UDS (one forked OS
  // process per rank, measured timing): identical bits, different clocks.
  // The UDS logits additionally cross the report pipe as JSON, pinning the
  // %.17g float round-trip.
  const Dataset ds = small_dataset(73);
  const auto part = metis_like(ds.graph, 2);
  for (const auto model : {core::ModelKind::kSage, core::ModelKind::kGat}) {
    auto cfg = base_config(model);
    const auto scfg = serve_config(4, 3);
    cfg.comm.transport = TransportKind::kMailbox;
    const auto mbox = api::serve(ds, part, cfg, scfg);
    cfg.comm.transport = TransportKind::kUds;
    const auto uds = api::serve(ds, part, cfg, scfg);
    expect_same_bits(uds, mbox,
                     model == core::ModelKind::kGat ? "gat uds vs mailbox"
                                                    : "sage uds vs mailbox");
    EXPECT_EQ(mbox.timing, TimingSource::kSimulated);
    EXPECT_EQ(uds.timing, TimingSource::kMeasured);
  }
}

TEST(Serve, OverlapModeInvariantBitwise) {
  // The serve forward inherits the trainer's mode contract: blocking,
  // bulk and stream execute the identical fp instruction stream.
  const Dataset ds = small_dataset(79);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage);
  cfg.comm.overlap = core::OverlapMode::kBlocking;
  const auto blocking = api::serve(ds, part, cfg, serve_config(4, 3));
  cfg.comm.overlap = core::OverlapMode::kStream;
  cfg.comm.inner_chunk_rows = 32;
  const auto stream = api::serve(ds, part, cfg, serve_config(4, 3));
  expect_same_bits(stream, blocking, "stream+chunked vs blocking");
}

TEST(Serve, HaloCacheInvariantBitwiseAndWarm) {
  // cache_staleness == 0: only the epoch-invariant layer-0 features cache,
  // so cached serving is bit-identical to uncached — and the request
  // batches after the first run warm (hits > 0, bytes saved > 0).
  const Dataset ds = small_dataset(83);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage);
  const auto cold = api::serve(ds, part, cfg, serve_config(4, 4));
  cfg.comm.cache_mb = 4;
  const auto cached = api::serve(ds, part, cfg, serve_config(4, 4));
  expect_same_bits(cached, cold, "cache_mb=4 vs cache off");
  EXPECT_EQ(cold.cache_hit_rows(), 0);
  EXPECT_GT(cached.cache_hit_rows(), 0);
  EXPECT_GT(cached.cache_bytes_saved(), 0);
  // Batch 0 is the cold fill; every later batch re-requests the same
  // layer-0 boundary rows and must hit.
  ASSERT_EQ(cached.batches.size(), 4u);
  EXPECT_EQ(cached.batches[0].cache_hit_rows, 0);
  for (std::size_t b = 1; b < cached.batches.size(); ++b)
    EXPECT_GT(cached.batches[b].cache_hit_rows, 0) << "batch " << b;

  // Staleness is a training-only knob: the serve engine clamps it to 0
  // (weights are frozen). A config carrying staleness > 0 trains with
  // stale halos — different weights, different logits — but its serve
  // loop must run the exact staleness-0 cache schedule: the structural
  // counters (pure functions of positions and capacity, not of weights)
  // must match the staleness-0 serve batch for batch. Unclamped, the
  // deeper layers would also cache and inflate hits and bytes saved.
  cfg.comm.cache_staleness = 2;
  const auto stale = api::serve(ds, part, cfg, serve_config(4, 4));
  ASSERT_EQ(stale.batches.size(), cached.batches.size());
  for (std::size_t b = 0; b < stale.batches.size(); ++b) {
    EXPECT_EQ(stale.batches[b].cache_hit_rows,
              cached.batches[b].cache_hit_rows)
        << "batch " << b;
    EXPECT_EQ(stale.batches[b].cache_miss_rows,
              cached.batches[b].cache_miss_rows)
        << "batch " << b;
    EXPECT_EQ(stale.batches[b].bytes_saved, cached.batches[b].bytes_saved)
        << "batch " << b;
  }
  EXPECT_EQ(stale.queries, cached.queries);
}

TEST(Serve, PredictionsAreLearned) {
  // Semantic sanity on top of the bit-level pins: the served predictions
  // come from trained weights, so on the easy synthetic communities they
  // must beat chance (1/4) by a wide margin.
  const Dataset ds = small_dataset(89);
  const auto part = metis_like(ds.graph, 2);
  auto cfg = base_config(core::ModelKind::kSage);
  cfg.trainer.epochs = 30;
  const auto report = api::serve(ds, part, cfg, serve_config(32, 4));
  ASSERT_EQ(report.predictions.size(), report.queries.size());
  int correct = 0;
  for (std::size_t i = 0; i < report.queries.size(); ++i) {
    const auto label =
        ds.labels[static_cast<std::size_t>(report.queries[i])];
    if (report.predictions[i] == label) ++correct;
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(report.queries.size());
  EXPECT_GT(acc, 0.5) << "served predictions at chance level";
}

TEST(Serve, ReportJsonRoundTrip) {
  // Field-complete round-trip, logits bitwise (RunReport conventions).
  const Dataset ds = small_dataset(97);
  const auto part = metis_like(ds.graph, 2);
  const auto report =
      api::serve(ds, part, base_config(core::ModelKind::kSage),
                 serve_config(4, 2));
  const auto back =
      api::serve_report_from_json_string(api::to_json_string(report));
  EXPECT_EQ(back.method, report.method);
  EXPECT_EQ(back.dataset, report.dataset);
  EXPECT_EQ(back.batch_size, report.batch_size);
  EXPECT_EQ(back.num_batches, report.num_batches);
  EXPECT_EQ(back.num_classes, report.num_classes);
  EXPECT_EQ(back.queries, report.queries);
  EXPECT_EQ(back.predictions, report.predictions);
  EXPECT_EQ(back.logits, report.logits);
  EXPECT_EQ(back.train_wall_s, report.train_wall_s);
  EXPECT_EQ(back.serve_wall_s, report.serve_wall_s);
  EXPECT_EQ(back.timing, report.timing);
  ASSERT_EQ(back.batches.size(), report.batches.size());
  for (std::size_t i = 0; i < report.batches.size(); ++i) {
    EXPECT_EQ(back.batches[i].latency_s, report.batches[i].latency_s);
    EXPECT_EQ(back.batches[i].comm_s, report.batches[i].comm_s);
    EXPECT_EQ(back.batches[i].feature_bytes, report.batches[i].feature_bytes);
    EXPECT_EQ(back.batches[i].control_bytes, report.batches[i].control_bytes);
  }

  // ServeConfig round-trips through its own schema.
  api::ServeConfig scfg = serve_config(7, 3);
  const auto scfg_back =
      api::serve_config_from_json_string(api::to_json_string(scfg));
  EXPECT_EQ(scfg_back.batch_size, scfg.batch_size);
  EXPECT_EQ(scfg_back.num_batches, scfg.num_batches);
  EXPECT_EQ(scfg_back.seed, scfg.seed);
  EXPECT_EQ(scfg_back.record_logits, scfg.record_logits);
}

TEST(Serve, MailboxDeadRankUnwindsMidStream) {
  // One rank dies before batch 0; sibling rank threads blocked in the
  // serve exchange must unwind via the fabric shutdown, and serve() must
  // rethrow the root cause. The alarm turns a regression into a loud
  // SIGALRM instead of a silent CI timeout.
  const Dataset ds = small_dataset(101);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage);
  auto scfg = serve_config(4, 3);
  scfg.fail_rank = 1;
  alarm(180);
  try {
    (void)api::serve(ds, part, cfg, scfg);
    FAIL() << "dead serving rank went unnoticed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected serve failure"),
              std::string::npos)
        << e.what();
  }
  alarm(0);
}

TEST(Serve, UdsDeadRankSurfacesCleanErrorNamingRank) {
  // Same injection through the forked UDS runtime: the dead rank's
  // process unwind closes its sockets, peers error out with
  // ShutdownError, and the parent names the failed rank.
  const Dataset ds = small_dataset(103);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage);
  cfg.comm.transport = TransportKind::kUds;
  auto scfg = serve_config(4, 3);
  scfg.fail_rank = 1;
  alarm(180);
  try {
    (void)api::serve(ds, part, cfg, scfg);
    FAIL() << "dead serving rank went unnoticed";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank"), std::string::npos) << msg;
    EXPECT_NE(msg.find('1'), std::string::npos) << msg;
  }
  alarm(0);
}

} // namespace
} // namespace bnsgcn
