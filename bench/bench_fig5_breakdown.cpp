// Figure 5: epoch-time breakdown (computation / boundary communication /
// gradient allreduce) of BNS-GCN across p and partition counts, under the
// PCIe interconnect model.
// Expected shape: communication dominates at p=1 (up to ~2/3 of the epoch)
// and collapses by ~an order of magnitude at p=0.01; reduce time constant.

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 const std::vector<PartId>& parts,
                 const api::BenchOptions& opts, bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  std::printf("\n--- %s ---\n", title);
  std::printf("%-8s %-8s %12s %12s %12s %12s %10s\n", "parts", "p",
              "compute(s)", "comm(s)", "reduce(s)", "epoch(s)", "comm%");
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = opts.epochs_or(5);
  for (const PartId m : parts) {
    rcfg.partition.nparts = m; // partitioned once, cached across the p-sweep
    for (const float p : {1.0f, 0.1f, 0.01f}) {
      rcfg.trainer.sample_rate = p;
      const auto& r = sink.add(bench::label("%s m=%d p=%.2f", preset, m, p),
                               rcfg, api::run(pr.ds, rcfg));
      const auto e = r.mean_epoch();
      std::printf("%-8d %-8.2f %12.4f %12.4f %12.4f %12.4f %9.1f%%\n", m, p,
                  e.compute_s, e.comm_s, e.reduce_s, e.total_s(),
                  100.0 * e.comm_s / e.total_s());
    }
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 5", "epoch time breakdown vs p (simulated PCIe)");
  bench::ReportSink sink("Figure 5", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like", "reddit", 0.5 * s, {2, 4, 8}, opts, sink);
  run_dataset("ogbn-products-like", "products", 0.4 * s, {5, 8, 10}, opts,
              sink);
  std::printf("\npaper shape check: comm dominates at p=1; p=0.01 cuts comm "
              "74-93%%.\n");
  return 0;
}
