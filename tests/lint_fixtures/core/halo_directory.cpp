// Fixture: hash containers in a cache-directory path (core/). A halo-cache
// directory's iteration order decides slab layout and eviction victims on
// both ends of a wire (docs/ARCHITECTURE.md §9), so *owning* an unordered
// container here must fire; the annotated twin shows the sanctioned shape.
#include <cstdint>
#include <unordered_map>

namespace fixture {

void fill_directory() {
  std::unordered_map<std::int64_t, std::int64_t> slots;
  (void)slots;
  // lint: allow(unordered-container) — hit-count scratch; slab order comes
  // from the sorted position list, this map is never iterated.
  std::unordered_map<std::int64_t, std::int64_t> freq;
  (void)freq;
}

} // namespace fixture
