#include <unordered_map>

#include "baselines/minibatch.hpp"

namespace bnsgcn::baselines {

namespace {

/// Draw `batch_size` distinct seeds from the train split.
std::vector<NodeId> draw_seeds(const Dataset& ds, NodeId batch_size,
                               Rng& rng) {
  const auto n_train = static_cast<NodeId>(ds.train_nodes.size());
  const NodeId k = std::min(batch_size, n_train);
  std::vector<NodeId> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  for (const NodeId idx : rng.sample_without_replacement(n_train, k))
    seeds.push_back(ds.train_nodes[static_cast<std::size_t>(idx)]);
  return seeds;
}

} // namespace

api::RunReport train_neighbor_sampling(const Dataset& ds,
                                       const core::TrainerConfig& cfg,
                                       const MinibatchConfig& mb) {
  const Csr& g = ds.graph;

  const auto next_batch = [&](Rng& rng) {
    Batch batch;
    batch.output_nodes = draw_seeds(ds, mb.batch_size, rng);
    batch.adjs.resize(static_cast<std::size_t>(cfg.num_layers));
    batch.inv_deg.resize(static_cast<std::size_t>(cfg.num_layers));

    // Build levels top-down: sources at level l = dsts(level l+1) ++ newly
    // sampled neighbors (GraphSAGE samples `fanout` with replacement; the
    // mean over the draws is the Hamilton et al. estimator).
    std::vector<NodeId> dsts = batch.output_nodes;
    for (int l = cfg.num_layers - 1; l >= 0; --l) {
      std::vector<NodeId> srcs = dsts;
      std::unordered_map<NodeId, NodeId> local; // global -> local
      local.reserve(srcs.size() * 4);
      for (std::size_t i = 0; i < srcs.size(); ++i)
        local.emplace(srcs[i], static_cast<NodeId>(i));

      auto& adj = batch.adjs[static_cast<std::size_t>(l)];
      auto& inv = batch.inv_deg[static_cast<std::size_t>(l)];
      adj.n_dst = static_cast<NodeId>(dsts.size());
      adj.offsets.assign(dsts.size() + 1, 0);
      inv.assign(dsts.size(), 0.0f);
      for (std::size_t i = 0; i < dsts.size(); ++i) {
        const auto nb = g.neighbors(dsts[i]);
        const int k = nb.empty() ? 0 : mb.fanout;
        for (int t = 0; t < k; ++t) {
          const NodeId u =
              nb[static_cast<std::size_t>(rng.next_below(nb.size()))];
          auto [it, inserted] =
              local.emplace(u, static_cast<NodeId>(srcs.size()));
          if (inserted) srcs.push_back(u);
          adj.nbrs.push_back(it->second);
        }
        adj.offsets[i + 1] = static_cast<EdgeId>(adj.nbrs.size());
        if (k > 0) inv[i] = 1.0f / static_cast<float>(k);
      }
      adj.n_src = static_cast<NodeId>(srcs.size());
      dsts = std::move(srcs);
    }
    batch.input_nodes = std::move(dsts);
    // All seeds are train nodes; loss on every output row.
    batch.loss_rows.resize(batch.output_nodes.size());
    for (std::size_t i = 0; i < batch.loss_rows.size(); ++i)
      batch.loss_rows[i] = static_cast<NodeId>(i);
    return batch;
  };

  auto report = run_minibatch_training(ds, cfg, mb, next_batch);
  report.method = "graphsage";
  return report;
}

} // namespace bnsgcn::baselines
