// Table 7: test score of BNS-GCN on top of *random* partitioning, with the
// delta vs METIS-based BNS-GCN.
// Expected shape: at p=1 identical (full exchange sees the whole graph);
// at p=0.1 comparable (±0.3); at p=0 random partitioning collapses (every
// neighborhood is scattered, isolation destroys aggregation).

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const Dataset& ds,
                 core::TrainerConfig cfg, PartId parts) {
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  Rng rng(cfg.seed);
  const auto part_metis = metis_like(ds.graph, parts);
  const auto part_rand = random_partition(ds.num_nodes(), parts, rng);

  std::printf("%-10s %14s %14s %10s\n", "p", "Random+BNS %", "METIS+BNS %",
              "delta");
  for (const float p : {1.0f, 0.1f, 0.0f}) {
    auto c = cfg;
    c.sample_rate = p;
    const double rand_score =
        100.0 * core::BnsTrainer(ds, part_rand, c).train().final_test;
    const double metis_score =
        100.0 * core::BnsTrainer(ds, part_metis, c).train().final_test;
    std::printf("%-10.2f %14.2f %14.2f %+10.2f\n", p, rand_score, metis_score,
                rand_score - metis_score);
  }
}

} // namespace

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 7", "BNS-GCN on random partition (score delta)");
  const double s = bench::bench_scale();
  {
    const Dataset ds = make_synthetic(reddit_like(0.3 * s));
    auto cfg = bench::reddit_config();
    cfg.epochs = 100;
    run_dataset("Reddit-like (8 partitions)", ds, cfg, 8);
  }
  {
    const Dataset ds = make_synthetic(products_like(0.2 * s));
    auto cfg = bench::products_config();
    cfg.epochs = 100;
    run_dataset("ogbn-products-like (10 partitions)", ds, cfg, 10);
  }
  {
    const Dataset ds = make_synthetic(yelp_like(0.3 * s));
    auto cfg = bench::yelp_config();
    cfg.epochs = 100;
    run_dataset("Yelp-like (10 partitions, micro-F1)", ds, cfg, 10);
  }
  std::printf("\npaper shape check: p=0.1 within ±0.3; p=0 drops several "
              "points under random partitioning.\n");
  return 0;
}
