// Table 7: test score of BNS-GCN on top of *random* partitioning, with the
// delta vs METIS-based BNS-GCN.
// Expected shape: at p=1 identical (full exchange sees the whole graph);
// at p=0.1 comparable (±0.3); at p=0 random partitioning collapses (every
// neighborhood is scattered, isolation destroys aggregation).

#include "common.hpp"

namespace {

using namespace bnsgcn;

void run_dataset(const char* title, const char* preset, double scale,
                 PartId parts, const api::BenchOptions& opts,
                 bench::ReportSink& sink) {
  const auto pr = bench::load_preset(preset, scale, opts);
  std::printf("\n--- %s (%d partitions) ---\n", title, parts);
  api::RunConfig rcfg = pr.config(api::Method::kBns);
  rcfg.trainer.epochs = opts.epochs_or(100);

  // Both specs are partitioned once and served from the cache for the
  // rest of the p-sweep.
  const api::PartitionSpec metis{.kind = api::PartitionSpec::Kind::kMetis,
                                 .nparts = parts};
  const api::PartitionSpec random{.kind = api::PartitionSpec::Kind::kRandom,
                                  .nparts = parts,
                                  .seed = pr.trainer.seed};

  std::printf("%-10s %14s %14s %10s\n", "p", "Random+BNS %", "METIS+BNS %",
              "delta");
  for (const float p : {1.0f, 0.1f, 0.0f}) {
    rcfg.trainer.sample_rate = p;
    rcfg.partition = random;
    const double rand_score =
        100.0 * sink.add(bench::label("%s random p=%.2f", preset, p), rcfg,
                         api::run(pr.ds, rcfg))
                    .final_test;
    rcfg.partition = metis;
    const double metis_score =
        100.0 * sink.add(bench::label("%s metis p=%.2f", preset, p), rcfg,
                         api::run(pr.ds, rcfg))
                    .final_test;
    std::printf("%-10.2f %14.2f %14.2f %+10.2f\n", p, rand_score, metis_score,
                rand_score - metis_score);
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Table 7", "BNS-GCN on random partition (score delta)");
  bench::ReportSink sink("Table 7", opts);
  const double s = opts.scale;
  run_dataset("Reddit-like (8 partitions)", "reddit", 0.3 * s, 8, opts, sink);
  run_dataset("ogbn-products-like (10 partitions)", "products", 0.2 * s, 10,
              opts, sink);
  run_dataset("Yelp-like (10 partitions, micro-F1)", "yelp", 0.3 * s, 10,
              opts, sink);
  std::printf("\npaper shape check: p=0.1 within ±0.3; p=0 drops several "
              "points under random partitioning.\n");
  return 0;
}
