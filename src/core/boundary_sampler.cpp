#include "core/boundary_sampler.hpp"

#include <algorithm>

namespace bnsgcn::core {

BoundarySampler::BoundarySampler(const LocalGraph& lg, const Options& opts)
    : lg_(lg), opts_(opts), rng_(opts.seed) {
  BNSGCN_CHECK(opts.rate >= 0.0f && opts.rate <= 1.0f);
}

EpochPlan BoundarySampler::plan_from_kept(
    const std::vector<char>& halo_kept, const std::vector<char>* edge_kept) {
  const NodeId n_in = lg_.n_inner();
  const NodeId n_halo = lg_.n_halo();

  EpochPlan plan;
  // Compact halo ids: kept halo nodes keep their relative order.
  std::vector<NodeId> compact(static_cast<std::size_t>(n_halo), -1);
  NodeId next = 0;
  for (NodeId h = 0; h < n_halo; ++h) {
    if (halo_kept[static_cast<std::size_t>(h)]) {
      compact[static_cast<std::size_t>(h)] = next++;
      plan.kept_halo_idx.push_back(h);
    }
  }
  plan.n_kept_halo = next;

  // Compacted adjacency. Edge scaling (1/q) applies only to the edge
  // variants; BNS scales whole received feature rows instead.
  const bool edge_scaled =
      edge_kept != nullptr && opts_.unbiased_scaling && opts_.rate > 0.0f;
  const float q_inv = edge_scaled ? 1.0f / opts_.rate : 1.0f;

  nn::BipartiteCsr& adj = plan.adj;
  adj.n_dst = n_in;
  adj.n_src = n_in + plan.n_kept_halo;
  adj.offsets.assign(static_cast<std::size_t>(n_in) + 1, 0);
  adj.nbrs.reserve(lg_.adj.nbrs.size());
  const bool want_scale_vec = edge_kept != nullptr;
  if (want_scale_vec) adj.edge_scale.reserve(lg_.adj.nbrs.size());

  for (NodeId v = 0; v < n_in; ++v) {
    const auto begin = static_cast<std::size_t>(
        lg_.adj.offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(
        lg_.adj.offsets[static_cast<std::size_t>(v) + 1]);
    for (std::size_t e = begin; e < end; ++e) {
      const NodeId u = lg_.adj.nbrs[e];
      if (edge_kept != nullptr && !(*edge_kept)[e]) continue; // dropped edge
      if (u < n_in) {
        adj.nbrs.push_back(u);
        if (want_scale_vec)
          adj.edge_scale.push_back(
              (edge_kept != nullptr &&
               opts_.variant == SamplingVariant::kDropEdge)
                  ? q_inv
                  : 1.0f);
      } else {
        const NodeId slot = compact[static_cast<std::size_t>(u - n_in)];
        if (slot < 0) continue; // dropped halo node
        adj.nbrs.push_back(n_in + slot);
        if (want_scale_vec) adj.edge_scale.push_back(q_inv);
      }
    }
    adj.offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<EdgeId>(adj.nbrs.size());
  }
  plan.dropped_edges =
      static_cast<EdgeId>(lg_.adj.nbrs.size() - adj.nbrs.size());

  // Per-peer send/recv lists are filled by sample_epoch (they need the
  // negotiated kept positions); full_plan fills them structurally.
  plan.send_rows.resize(static_cast<std::size_t>(lg_.nparts));
  plan.recv_slots.resize(static_cast<std::size_t>(lg_.nparts));
  for (PartId j = 0; j < lg_.nparts; ++j) {
    for (const NodeId h : lg_.recv_halo[static_cast<std::size_t>(j)]) {
      const NodeId slot = compact[static_cast<std::size_t>(h)];
      if (slot >= 0)
        plan.recv_slots[static_cast<std::size_t>(j)].push_back(slot);
    }
  }
  return plan;
}

EpochPlan BoundarySampler::sample_epoch(comm::Endpoint& ep, int tag) {
  const NodeId n_halo = lg_.n_halo();
  std::vector<char> halo_kept(static_cast<std::size_t>(n_halo), 1);
  std::vector<char> edge_kept;
  const std::vector<char>* edge_kept_ptr = nullptr;

  switch (opts_.variant) {
    case SamplingVariant::kBns: {
      // Algorithm 1 line 4: keep each boundary node with probability p.
      for (NodeId h = 0; h < n_halo; ++h)
        halo_kept[static_cast<std::size_t>(h)] =
            rng_.next_bool(opts_.rate) ? 1 : 0;
      break;
    }
    case SamplingVariant::kBoundaryEdge: {
      // Keep each *boundary* edge with probability q; a halo node survives
      // iff at least one incident edge survives (Section 4.3).
      edge_kept.assign(lg_.adj.nbrs.size(), 1);
      std::fill(halo_kept.begin(), halo_kept.end(), 0);
      for (std::size_t e = 0; e < lg_.adj.nbrs.size(); ++e) {
        const NodeId u = lg_.adj.nbrs[e];
        if (u < lg_.n_inner()) continue; // inner edges untouched
        if (rng_.next_bool(opts_.rate)) {
          halo_kept[static_cast<std::size_t>(u - lg_.n_inner())] = 1;
        } else {
          edge_kept[e] = 0;
        }
      }
      edge_kept_ptr = &edge_kept;
      break;
    }
    case SamplingVariant::kDropEdge: {
      // Keep every edge (inner ones too) with probability q.
      edge_kept.assign(lg_.adj.nbrs.size(), 1);
      std::fill(halo_kept.begin(), halo_kept.end(), 0);
      for (std::size_t e = 0; e < lg_.adj.nbrs.size(); ++e) {
        if (!rng_.next_bool(opts_.rate)) {
          edge_kept[e] = 0;
          continue;
        }
        const NodeId u = lg_.adj.nbrs[e];
        if (u >= lg_.n_inner())
          halo_kept[static_cast<std::size_t>(u - lg_.n_inner())] = 1;
      }
      edge_kept_ptr = &edge_kept;
      break;
    }
  }

  EpochPlan plan = plan_from_kept(halo_kept, edge_kept_ptr);
  plan.halo_scale = (opts_.variant == SamplingVariant::kBns &&
                     opts_.unbiased_scaling && opts_.rate > 0.0f)
                        ? 1.0f / opts_.rate
                        : 1.0f;

  // Algorithm 1 lines 6-7: tell each owner which of its rows we kept.
  // Both sides order the structural halo list identically (sorted by global
  // id), so positions index straight into the owner's send set.
  for (PartId j = 0; j < lg_.nparts; ++j) {
    const auto& structural = lg_.recv_halo[static_cast<std::size_t>(j)];
    if (structural.empty()) continue;
    std::vector<NodeId> kept_positions;
    kept_positions.reserve(structural.size());
    for (std::size_t t = 0; t < structural.size(); ++t) {
      if (halo_kept[static_cast<std::size_t>(structural[t])])
        kept_positions.push_back(static_cast<NodeId>(t));
    }
    ep.send_ids(j, tag, std::move(kept_positions),
                comm::TrafficClass::kControl);
  }
  for (PartId j = 0; j < lg_.nparts; ++j) {
    const auto& our_rows = lg_.send_sets[static_cast<std::size_t>(j)];
    if (our_rows.empty()) continue;
    const auto positions = ep.recv_ids(j, tag, comm::TrafficClass::kControl);
    auto& rows = plan.send_rows[static_cast<std::size_t>(j)];
    rows.reserve(positions.size());
    for (const NodeId t : positions) {
      BNSGCN_CHECK(t >= 0 &&
                   t < static_cast<NodeId>(our_rows.size()));
      rows.push_back(our_rows[static_cast<std::size_t>(t)]);
    }
  }
  return plan;
}

EpochPlan BoundarySampler::empty_plan() {
  const std::vector<char> none(static_cast<std::size_t>(lg_.n_halo()), 0);
  EpochPlan plan = plan_from_kept(none, nullptr);
  plan.halo_scale = 1.0f;
  return plan;
}

EpochPlan BoundarySampler::full_plan() const {
  EpochPlan plan;
  plan.adj = lg_.adj;
  plan.n_kept_halo = lg_.n_halo();
  plan.kept_halo_idx.resize(static_cast<std::size_t>(lg_.n_halo()));
  for (NodeId h = 0; h < lg_.n_halo(); ++h)
    plan.kept_halo_idx[static_cast<std::size_t>(h)] = h;
  plan.halo_scale = 1.0f;
  plan.send_rows = lg_.send_sets;
  plan.recv_slots = lg_.recv_halo; // slot == halo index when nothing dropped
  plan.dropped_edges = 0;
  return plan;
}

} // namespace bnsgcn::core
