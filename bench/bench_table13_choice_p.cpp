// Table 13 (Appendix E): test accuracy for sampling rates between 0.1 and
// 1.0 — the "choice of p" study.
// Expected shape: flat (±0.3) across 0.1..1.0, with a slight edge for small
// p from the regularization effect; p=0.1 is the sweet spot once its
// communication savings are counted.

#include "common.hpp"

int main() {
  using namespace bnsgcn;
  bench::print_banner("Table 13", "accuracy across p in [0.1, 1.0]");
  const double s = bench::bench_scale();

  struct Row {
    const char* name;
    Dataset ds;
    core::TrainerConfig cfg;
    PartId parts;
  };
  std::vector<Row> rows;
  {
    auto cfg = bench::reddit_config();
    cfg.epochs = 100;
    rows.push_back({"Reddit-like (2 parts)",
                    make_synthetic(reddit_like(0.3 * s)), cfg, 2});
  }
  {
    auto cfg = bench::products_config();
    cfg.epochs = 100;
    rows.push_back({"products-like (5 parts)",
                    make_synthetic(products_like(0.2 * s)), cfg, 5});
  }

  std::printf("%-26s", "dataset \\ p");
  for (const float p : {0.1f, 0.3f, 0.5f, 0.8f, 1.0f})
    std::printf(" %8.1f", p);
  std::printf("\n");
  for (auto& row : rows) {
    const auto part = metis_like(row.ds.graph, row.parts);
    std::printf("%-26s", row.name);
    for (const float p : {0.1f, 0.3f, 0.5f, 0.8f, 1.0f}) {
      auto c = row.cfg;
      c.sample_rate = p;
      const auto r = core::BnsTrainer(row.ds, part, c).train();
      std::printf(" %8.2f", 100.0 * r.final_test);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape check: scores flat across p (within a few "
              "tenths), so pick small p for efficiency.\n");
  return 0;
}
