// Figure 3: distribution of boundary/inner node ratios when a papers100M-
// class graph is split into 192 partitions. Expected shape: a wide
// distribution with a long right tail — the straggler partition needs
// several times more memory than the median one.

#include <algorithm>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace bnsgcn;
  const auto opts = api::parse_bench_args(argc, argv);
  bench::print_banner("Figure 3", "boundary/inner ratio distribution, 192 parts");

  const auto pr = bench::load_preset("papers", opts.scale, opts);
  api::PartitionSpec pspec;
  pspec.nparts = 192;
  const auto part = api::cached_partition(pr.ds.graph, pspec);
  const auto stats = compute_stats(pr.ds.graph, *part);

  std::vector<double> ratios;
  for (PartId i = 0; i < 192; ++i) ratios.push_back(stats.ratio(i));
  std::sort(ratios.begin(), ratios.end());

  // Histogram over [0, max] in 16 buckets, rendered as ASCII bars.
  const double mx = ratios.back();
  constexpr int kBuckets = 16;
  std::vector<int> hist(kBuckets, 0);
  for (const double r : ratios) {
    const int b = std::min(kBuckets - 1,
                           static_cast<int>(r / (mx + 1e-9) * kBuckets));
    ++hist[static_cast<std::size_t>(b)];
  }
  std::printf("ratio histogram (%d partitions):\n", 192);
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("[%5.2f,%5.2f) %4d ", mx * b / kBuckets,
                mx * (b + 1) / kBuckets, hist[static_cast<std::size_t>(b)]);
    for (int i = 0; i < hist[static_cast<std::size_t>(b)]; i += 2)
      std::printf("#");
    std::printf("\n");
  }
  const auto pct = [&](double q) {
    return ratios[static_cast<std::size_t>(q * (ratios.size() - 1))];
  };
  std::printf("\nmin %.2f  p25 %.2f  median %.2f  p75 %.2f  max %.2f\n",
              ratios.front(), pct(0.25), pct(0.5), pct(0.75), ratios.back());
  std::printf("straggler/median ratio: %.2fx (paper: straggler at ~8 vs bulk"
              " ≤ 3)\n", ratios.back() / pct(0.5));
  return 0;
}
