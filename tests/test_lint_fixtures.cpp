// Self-test of tools/lint: every determinism rule fires at the exact
// file:line the fixture plants it, allow-annotations suppress their
// occurrence (and nothing else), and the real src/ tree is clean. The
// expectation is an exact set comparison, so a spuriously-firing rule and a
// silently-dead rule both fail loudly.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "lint/determinism_lint.hpp"

namespace {

using bnsgcn::lint::Finding;
using Key = std::tuple<std::string, int, std::string>; // (file, line, rule)

std::set<Key> keys(const std::vector<Finding>& findings) {
  std::set<Key> out;
  for (const Finding& f : findings) out.insert({f.file, f.line, f.rule});
  return out;
}

std::string dump(const std::set<Key>& ks) {
  std::string out;
  for (const auto& [file, line, rule] : ks)
    out += "  " + file + ":" + std::to_string(line) + " [" + rule + "]\n";
  return out.empty() ? "  (none)\n" : out;
}

TEST(LintFixtures, EachRuleFiresExactlyWhereExpected) {
  const auto findings = bnsgcn::lint::lint_tree(BNSGCN_LINT_FIXTURES_DIR);
  // One planted violation per rule (unordered-container gets a second,
  // cache-directory-shaped probe in core/). Every fixture also carries an
  // allow-annotated twin (absent here == suppression works) and the
  // negative probes (std::this_thread, a for_blocks-region accumulation,
  // unordered containers outside ordering paths) must stay silent.
  const std::set<Key> expected = {
      {"comm/hash_router.cpp", 8, "unordered-container"},
      {"core/halo_directory.cpp", 11, "unordered-container"},
      {"common/legacy.hpp", 1, "pragma-once"},
      {"common/legacy.hpp", 3, "using-namespace-std"},
      {"core/seeder.cpp", 7, "raw-random"},
      {"core/ticker.cpp", 7, "raw-clock"},
      {"nn/spawner.cpp", 7, "raw-thread"},
      {"tensor/reduce.cpp", 6, "float-accum"},
  };
  const auto got = keys(findings);
  EXPECT_EQ(got, expected) << "expected:\n"
                           << dump(expected) << "got:\n"
                           << dump(got);
}

TEST(LintFixtures, EveryRuleHasAFixture) {
  // The fixture set above must exercise the full rule table: a new rule
  // without a fixture would otherwise ship untested.
  std::set<std::string> fired;
  for (const Finding& f : bnsgcn::lint::lint_tree(BNSGCN_LINT_FIXTURES_DIR))
    fired.insert(f.rule);
  for (const auto& r : bnsgcn::lint::rules())
    EXPECT_TRUE(fired.count(r.id)) << "rule has no firing fixture: " << r.id;
}

TEST(LintFixtures, RealTreeIsClean) {
  const auto findings = bnsgcn::lint::lint_tree(BNSGCN_SRC_DIR);
  EXPECT_TRUE(findings.empty()) << dump(keys(findings));
}

TEST(LintFixtures, AllowAnnotationOnlyCoversItsRule) {
  // An allow(raw-clock) must not silence a raw-random finding on the same
  // line: suppression is per (line, rule).
  const std::string src =
      "#pragma once\n"
      "// lint: allow(raw-clock) — wrong rule for the line below\n"
      "std::mt19937 gen;\n";
  const auto findings = bnsgcn::lint::lint_file("core/x.hpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-random");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFixtures, CommentsAndStringsDoNotFire) {
  const std::string src =
      "#pragma once\n"
      "// std::unordered_map in prose, std::thread too\n"
      "inline const char* kDoc = \"std::random_device\";\n";
  EXPECT_TRUE(bnsgcn::lint::lint_file("comm/doc.hpp", src).empty());
}

} // namespace
