#include "nn/sage_layer.hpp"

#include "tensor/ops.hpp"

namespace bnsgcn::nn {

SageLayer::SageLayer(std::int64_t d_in, std::int64_t d_out,
                     const Options& opts, Rng& rng)
    : Layer(d_in, d_out), opts_(opts), w_(2 * d_in, d_out), b_(1, d_out),
      dw_(2 * d_in, d_out), db_(1, d_out), dropout_rng_(rng.next_u64()) {
  ops::glorot_init(w_, rng);
}

Matrix SageLayer::forward(const BipartiteCsr& adj, const Matrix& feats,
                          std::span<const float> inv_deg, bool training) {
  BNSGCN_CHECK(feats.cols() == d_in_);
  BNSGCN_CHECK(feats.rows() == adj.n_src);
  cached_training_ = training;

  Matrix z;
  mean_aggregate(adj, feats, inv_deg, z);

  // Self features are the first n_dst rows of feats by the local-id layout.
  Matrix self(adj.n_dst, d_in_);
  std::copy(feats.data(), feats.data() + adj.n_dst * d_in_, self.data());

  ops::concat_cols(z, self, u_cache_);

  Matrix out(adj.n_dst, d_out_);
  ops::gemm_nn(u_cache_, w_, out);
  ops::add_row_bias(out, b_);

  if (opts_.relu) {
    if (inference_) {
      ops::relu_forward(out);
    } else {
      ops::relu_forward(out, relu_mask_);
    }
  }
  if (training && opts_.dropout > 0.0f) {
    ops::dropout_forward(out, dropout_mask_, opts_.dropout, dropout_rng_);
  } else {
    dropout_mask_.resize(0, 0);
  }
  return out;
}

void SageLayer::forward_inner_begin(const BipartiteCsr& adj,
                                    const Matrix& inner_feats, bool training) {
  phase_check_.on_forward_begin(adj.n_dst);
  BNSGCN_CHECK(inner_feats.cols() == d_in_);
  BNSGCN_CHECK(inner_feats.rows() == adj.n_dst);
  cached_training_ = training;
  // Setup only: the halo-independent work — inner-source partial
  // aggregation AND the self half of the transform (u·W splits as
  // z·W[:d_in] + self·W[d_in:] under the concat layout) — runs in the row
  // chunks, so RequestSet polls (and peer folds) can interleave.
  self_cache_ = inner_feats;
  z_partial_.resize(adj.n_dst, d_in_); // resize zero-fills
  w_half_.resize(d_in_, d_out_);
  std::copy(w_.data() + d_in_ * d_out_, w_.data() + 2 * d_in_ * d_out_,
            w_half_.data());
  out_partial_.resize(adj.n_dst, d_out_);
}

void SageLayer::forward_inner_chunk(const BipartiteCsr& adj, NodeId row0,
                                    NodeId row1) {
  phase_check_.on_forward_chunk(row0, row1);
  mean_aggregate_inner_rows(adj, self_cache_, row0, row1, z_partial_);
  // Row-range self transform, straight into the output rows: gemm_nn_rows
  // computes each row independently with the fixed k-loop order, so any
  // chunking is bit-identical to the fused GEMM — and no chunk stages
  // through heap copies.
  ops::gemm_nn_rows(self_cache_, w_half_, out_partial_, row0, row1);
  ops::add_row_bias_rows(out_partial_, b_, row0, row1);
}

void SageLayer::forward_halo_begin(const BipartiteCsr& adj,
                                   const HaloIncidence& inc) {
  phase_check_.on_halo_begin();
  BNSGCN_CHECK(inc.n_lo == adj.n_dst && inc.n_halo == adj.n_src - adj.n_dst);
  halo_inc_ = &inc;
  // Folds accumulate here, not in z_partial_: a fold may land before the
  // F1 chunk that computes its destination rows, and the separate buffer
  // is what keeps the per-row order (inner terms, then the halo sum)
  // independent of that timing.
  z_halo_.resize(adj.n_dst, d_in_); // resize zero-fills
}

void SageLayer::forward_halo_fold(const BipartiteCsr& adj,
                                  std::span<const NodeId> slots,
                                  std::span<const float> rows) {
  phase_check_.on_halo_fold();
  (void)adj; // geometry is frozen in the incidence received by _begin
  BNSGCN_CHECK(halo_inc_ != nullptr);
  mean_aggregate_halo_fold(*halo_inc_, slots, rows, d_in_, z_halo_);
}

Matrix SageLayer::forward_halo_finish(const BipartiteCsr& adj,
                                      std::span<const float> inv_deg) {
  phase_check_.on_halo_finish();
  (void)adj;
  for (std::int64_t i = 0; i < z_partial_.size(); ++i)
    z_partial_.data()[i] += z_halo_.data()[i];
  mean_aggregate_finish(inv_deg, z_partial_);

  Matrix out = std::move(out_partial_);
  w_half_.resize(d_in_, d_out_);
  std::copy(w_.data(), w_.data() + d_in_ * d_out_, w_half_.data());
  ops::gemm_nn(z_partial_, w_half_, out, 1.0f, 1.0f);

  // Backward consumes the assembled concat exactly as the fused path does;
  // inference has no backward, so the cache (and the ReLU mask) are skipped
  // — the output values are untouched by either skip.
  if (!inference_) {
    ops::concat_cols(z_partial_, self_cache_, u_cache_);
  }
  if (opts_.relu) {
    if (inference_) {
      ops::relu_forward(out);
    } else {
      ops::relu_forward(out, relu_mask_);
    }
  }
  if (cached_training_ && opts_.dropout > 0.0f) {
    ops::dropout_forward(out, dropout_mask_, opts_.dropout, dropout_rng_);
  } else {
    dropout_mask_.resize(0, 0);
  }
  return out;
}

Matrix SageLayer::backward_halo(const BipartiteCsr& adj, const Matrix& dout,
                                std::span<const float> inv_deg) {
  phase_check_.on_backward_halo();
  BNSGCN_CHECK(dout.rows() == adj.n_dst && dout.cols() == d_out_);
  // Only what the wire needs happens before the exchange is posted: the
  // activation backward and the halo-source scatter. Parameter gradients
  // are deferred to backward_inner (the in-flight phase) — they feed
  // nothing until the epoch-end allreduce.
  g_cache_ = dout;
  if (cached_training_ && !dropout_mask_.empty()) {
    ops::dropout_backward(g_cache_, dropout_mask_);
  }
  if (opts_.relu) {
    ops::relu_backward(g_cache_, relu_mask_);
  }
  Matrix du(adj.n_dst, 2 * d_in_);
  ops::gemm_nt(g_cache_, w_, du);
  ops::split_cols(du, dz_cache_, dself_cache_, d_in_);

  Matrix dhalo(adj.n_src - adj.n_dst, d_in_);
  mean_aggregate_backward_halo(adj, dz_cache_, inv_deg, adj.n_dst, dhalo);
  return dhalo;
}

Matrix SageLayer::backward_inner(const BipartiteCsr& adj,
                                 std::span<const float> inv_deg) {
  phase_check_.on_backward_inner();
  Matrix dinner = dself_cache_; // the self half lands on inner rows 1:1
  mean_aggregate_backward_inner(adj, dz_cache_, inv_deg, adj.n_dst, dinner);
  return dinner;
}

void SageLayer::backward_params(const BipartiteCsr&) {
  phase_check_.on_backward_params();
  // Deferred B3: dW/db feed nothing before the epoch-end allreduce, so the
  // trainer runs this inside the *next* layer's exchange window. u_cache_
  // and g_cache_ stay untouched until the next forward.
  ops::gemm_tn(u_cache_, g_cache_, dw_, 1.0f, 1.0f);
  ops::col_sum(g_cache_, db_);
}

void SageLayer::release_training_state() {
  dw_.resize(0, 0);
  db_.resize(0, 0);
  u_cache_.resize(0, 0);
  relu_mask_.resize(0, 0);
  dropout_mask_.resize(0, 0);
  dz_cache_.resize(0, 0);
  dself_cache_.resize(0, 0);
  g_cache_.resize(0, 0);
}

Matrix SageLayer::backward(const BipartiteCsr& adj, const Matrix& dout,
                           std::span<const float> inv_deg) {
  BNSGCN_CHECK(dout.rows() == adj.n_dst && dout.cols() == d_out_);
  Matrix g = dout; // own a mutable copy of the incoming gradient

  if (cached_training_ && !dropout_mask_.empty()) {
    ops::dropout_backward(g, dropout_mask_);
  }
  if (opts_.relu) {
    ops::relu_backward(g, relu_mask_);
  }

  // Parameter gradients (accumulated: trainer zeroes between iterations).
  ops::gemm_tn(u_cache_, g, dw_, 1.0f, 1.0f);
  ops::col_sum(g, db_);

  // dU = g · Wᵀ, split into the aggregation half and the self half.
  Matrix du(adj.n_dst, 2 * d_in_);
  ops::gemm_nt(g, w_, du);
  Matrix dz;
  Matrix dself;
  ops::split_cols(du, dz, dself, d_in_);

  Matrix dfeats(adj.n_src, d_in_);
  // Self contribution: inner rows only.
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    float* t = dfeats.data() + static_cast<std::int64_t>(v) * d_in_;
    const float* s = dself.data() + static_cast<std::int64_t>(v) * d_in_;
    for (std::int64_t c = 0; c < d_in_; ++c) t[c] += s[c];
  }
  mean_aggregate_backward(adj, dz, inv_deg, dfeats);
  return dfeats;
}

} // namespace bnsgcn::nn
