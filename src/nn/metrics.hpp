#pragma once

#include <cstdint>

namespace bnsgcn::nn {

/// Exponential moving average helper for smoothed training curves.
class Ema {
 public:
  explicit Ema(double decay = 0.9) : decay_(decay) {}
  void update(double x) {
    value_ = initialized_ ? decay_ * value_ + (1.0 - decay_) * x : x;
    initialized_ = true;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool initialized_ = false;
};

} // namespace bnsgcn::nn
