// Cross-process parity: a multi-process socket run (one forked OS process
// per rank, UDS or TCP loopback) must train bit-identically to the
// single-process mailbox run of the same config — same losses, same eval
// curve, same byte counts — while reporting measured (wall-clock) comm
// timing instead of the mailbox's simulated times. Also pins the
// deadlock-free shutdown contract at process level: a rank that dies
// mid-epoch must surface as a clean error on the parent, not a hang.

#include <gtest/gtest.h>

#include <unistd.h>

#include <stdexcept>
#include <string>

#include "api/run.hpp"
#include "api/serialize.hpp"
#include "partition/metis_like.hpp"

namespace bnsgcn {
namespace {

using comm::TimingSource;
using comm::TransportKind;

Dataset small_dataset(std::uint64_t seed = 41) {
  SyntheticSpec spec;
  spec.name = "mp-test";
  spec.n = 700;
  spec.m = 7000;
  spec.communities = 4;
  spec.num_classes = 4;
  spec.feat_dim = 12;
  spec.p_intra = 0.9;
  spec.feature_noise = 1.0;
  spec.seed = seed;
  return make_synthetic(spec);
}

api::RunConfig base_config(core::ModelKind model, NodeId chunk_rows) {
  api::RunConfig cfg;
  cfg.method = api::Method::kBns;
  cfg.trainer.num_layers = 2;
  cfg.trainer.hidden = 16;
  cfg.trainer.epochs = 3;
  cfg.trainer.seed = 5;
  cfg.trainer.sample_rate = 1.0f;
  cfg.trainer.eval_every = 2;
  cfg.trainer.model = model;
  cfg.trainer.gat_heads = model == core::ModelKind::kGat ? 2 : 1;
  cfg.comm.overlap = core::OverlapMode::kStream;
  cfg.comm.inner_chunk_rows = chunk_rows;
  return cfg;
}

/// Run `cfg` once on the mailbox and once on `kind`, same partitioning,
/// and require bit-identical training while the socket run reports
/// measured timing.
void expect_parity(const Dataset& ds, const Partitioning& part,
                   api::RunConfig cfg, TransportKind kind,
                   const char* what) {
  SCOPED_TRACE(what);
  cfg.comm.transport = TransportKind::kMailbox;
  const api::RunReport mbox = api::run(ds, part, cfg);
  cfg.comm.transport = kind;
  const api::RunReport sock = api::run(ds, part, cfg);

  // Bit parity: the socket backend folds in the same deterministic order
  // as the mailbox, so every numeric the schedule produces must match to
  // the last bit.
  EXPECT_EQ(sock.train_loss, mbox.train_loss);
  EXPECT_EQ(sock.final_val, mbox.final_val);
  EXPECT_EQ(sock.final_test, mbox.final_test);
  ASSERT_EQ(sock.curve.size(), mbox.curve.size());
  for (std::size_t i = 0; i < mbox.curve.size(); ++i) {
    EXPECT_EQ(sock.curve[i].val, mbox.curve[i].val);
    EXPECT_EQ(sock.curve[i].test, mbox.curve[i].test);
  }
  ASSERT_EQ(sock.epochs.size(), mbox.epochs.size());
  for (std::size_t i = 0; i < mbox.epochs.size(); ++i) {
    EXPECT_EQ(sock.epochs[i].feature_bytes, mbox.epochs[i].feature_bytes);
    EXPECT_EQ(sock.epochs[i].grad_bytes, mbox.epochs[i].grad_bytes);
    EXPECT_EQ(sock.epochs[i].control_bytes, mbox.epochs[i].control_bytes);
    // Timing source flips: mailbox simulates from byte counts, sockets
    // measure wall-clock spans.
    EXPECT_EQ(mbox.epochs[i].timing, TimingSource::kSimulated);
    EXPECT_EQ(sock.epochs[i].timing, TimingSource::kMeasured);
    EXPECT_GT(sock.epochs[i].comm_s, 0.0);
    EXPECT_LE(sock.epochs[i].overlap_s, sock.epochs[i].comm_s);
    EXPECT_GE(sock.epochs[i].overlap_s, 0.0);
    EXPECT_GE(sock.epochs[i].comm_tail_s, 0.0);
  }
  EXPECT_EQ(sock.memory.model_bytes, mbox.memory.model_bytes);
  EXPECT_EQ(sock.memory.full_bytes, mbox.memory.full_bytes);
}

TEST(Multiprocess, UdsSageParityStreamAndChunked) {
  const Dataset ds = small_dataset();
  for (const PartId nparts : {2, 4}) {
    const auto part = metis_like(ds.graph, nparts);
    for (const NodeId chunk : {NodeId{0}, NodeId{64}}) {
      const auto cfg = base_config(core::ModelKind::kSage, chunk);
      expect_parity(ds, part, cfg, TransportKind::kUds,
                    (std::string("sage uds m=") + std::to_string(nparts) +
                     " chunk=" + std::to_string(chunk))
                        .c_str());
    }
  }
}

TEST(Multiprocess, UdsGatParityStreamAndChunked) {
  const Dataset ds = small_dataset(43);
  for (const PartId nparts : {2, 4}) {
    const auto part = metis_like(ds.graph, nparts);
    for (const NodeId chunk : {NodeId{0}, NodeId{64}}) {
      const auto cfg = base_config(core::ModelKind::kGat, chunk);
      expect_parity(ds, part, cfg, TransportKind::kUds,
                    (std::string("gat uds m=") + std::to_string(nparts) +
                     " chunk=" + std::to_string(chunk))
                        .c_str());
    }
  }
}

TEST(Multiprocess, TcpParityOneConfig) {
  // TCP is config-compatible with UDS (same framing, loopback sockets);
  // one representative config keeps the suite fast while pinning the
  // address-family-specific bootstrap.
  const Dataset ds = small_dataset(47);
  const auto part = metis_like(ds.graph, 2);
  expect_parity(ds, part, base_config(core::ModelKind::kSage, 0),
                TransportKind::kTcp, "sage tcp m=2");
}

TEST(Multiprocess, DeadRankSurfacesCleanErrorNotHang) {
  // One rank throws just before the first forward exchange; its process
  // unwind closes the sockets, peers' blocking waits error out with
  // ShutdownError, every child exits, and the parent reports which rank
  // failed. The alarm turns a regression into a loud SIGALRM instead of
  // a silent CI timeout.
  const Dataset ds = small_dataset(53);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage, 0);
  cfg.comm.transport = TransportKind::kUds;
  cfg.trainer.fail_rank = 1;
  alarm(180);
  try {
    (void)api::run(ds, part, cfg);
    FAIL() << "dead rank went unnoticed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos)
        << e.what();
  }
  alarm(0);
}

TEST(Multiprocess, ReportLargerThanPipeCapacitySurvivesTheReportPipe) {
  // Regression for the parent's report-pipe read loop: a rank-0 report
  // bigger than the kernel pipe capacity (64 KiB on Linux) arrives in
  // several read() chunks while rank 0 is still alive and blocked in
  // write(). A single-read parent would truncate the JSON mid-token and
  // deadlock rank 0; the loop must drain to EOF and parse the whole
  // document. An epoch sweep inflates the per-epoch rows well past the
  // pipe capacity without meaningful extra compute (tiny graph).
  const Dataset ds = small_dataset(61);
  const auto part = metis_like(ds.graph, 2);
  auto cfg = base_config(core::ModelKind::kSage, 0);
  cfg.comm.transport = TransportKind::kUds;
  cfg.trainer.epochs = 400;
  cfg.trainer.eval_every = 0;  // keep the sweep cheap: no eval forwards
  alarm(180);
  const api::RunReport report = api::run(ds, part, cfg);
  alarm(0);
  ASSERT_EQ(report.epochs.size(), 400u);
  // The fix matters only if this report genuinely exceeds the pipe
  // capacity — assert it so dataset shrinkage cannot quietly defang the
  // test.
  EXPECT_GT(api::to_json_string(report).size(), 65536u);
  EXPECT_EQ(report.epochs.back().timing, TimingSource::kMeasured);
}

TEST(Multiprocess, MailboxThreadPathAlsoUnwindsOnDeadRank) {
  // Same injection through the in-process mailbox fabric: the failing
  // thread's shutdown() must poison the collectives so the sibling rank
  // threads unwind, and train() must rethrow the root cause (the injected
  // error), not a secondary ShutdownError.
  const Dataset ds = small_dataset(59);
  const auto part = metis_like(ds.graph, 4);
  auto cfg = base_config(core::ModelKind::kSage, 0);
  cfg.comm.transport = TransportKind::kMailbox;
  cfg.trainer.fail_rank = 2;
  alarm(180);
  try {
    (void)api::run(ds, part, cfg);
    FAIL() << "dead rank went unnoticed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos)
        << e.what();
  }
  alarm(0);
}

} // namespace
} // namespace bnsgcn
