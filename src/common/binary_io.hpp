#pragma once

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/check.hpp"

namespace bnsgcn::io {

/// Shared raw-array (de)serialization helpers for the binary cache
/// formats (graph/io.cpp, partition/io.cpp). Little-endian, not portable
/// across endianness — local caching only, as both headers document.

template <typename T>
void write_pod(std::ofstream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "truncated file");
  return value;
}

template <typename T>
void write_vec(std::ofstream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  BNSGCN_CHECK_MSG(static_cast<bool>(is), "truncated file");
  return v;
}

} // namespace bnsgcn::io
