#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/gat_layer.hpp"
#include "nn/sage_layer.hpp"
#include "tensor/ops.hpp"

namespace bnsgcn {
namespace {

using nn::BipartiteCsr;

/// 3 destination nodes, 5 source rows (3 inner + 2 halo).
BipartiteCsr small_adj() {
  BipartiteCsr adj;
  adj.n_dst = 3;
  adj.n_src = 5;
  adj.offsets = {0, 2, 4, 6};
  adj.nbrs = {1, 3, 0, 4, 1, 2};
  adj.validate();
  return adj;
}

std::vector<float> full_inv_deg(const BipartiteCsr& adj) {
  std::vector<float> inv(static_cast<std::size_t>(adj.n_dst));
  for (NodeId v = 0; v < adj.n_dst; ++v) {
    const auto d = adj.degree(v);
    inv[static_cast<std::size_t>(v)] = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
  }
  return inv;
}

TEST(BipartiteCsr, ValidateCatchesBadNeighbors) {
  BipartiteCsr adj;
  adj.n_dst = 1;
  adj.n_src = 2;
  adj.offsets = {0, 1};
  adj.nbrs = {5}; // out of range
  EXPECT_THROW(adj.validate(), CheckError);
}

TEST(MeanAggregate, HandComputed) {
  const auto adj = small_adj();
  Matrix src(5, 2);
  for (NodeId u = 0; u < 5; ++u) {
    src.at(u, 0) = static_cast<float>(u);
    src.at(u, 1) = static_cast<float>(10 * u);
  }
  Matrix out;
  const auto inv = full_inv_deg(adj);
  nn::mean_aggregate(adj, src, inv, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);   // (1+3)/2
  EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);   // (0+4)/2
  EXPECT_FLOAT_EQ(out.at(2, 1), 15.0f);  // (10+20)/2
}

TEST(MeanAggregate, ZeroDegreeRowsStayZero) {
  BipartiteCsr adj;
  adj.n_dst = 2;
  adj.n_src = 2;
  adj.offsets = {0, 0, 1};
  adj.nbrs = {0};
  Matrix src(2, 3, 5.0f);
  Matrix out;
  std::vector<float> inv{0.0f, 1.0f};
  nn::mean_aggregate(adj, src, inv, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 5.0f);
}

TEST(MeanAggregate, BackwardMatchesForwardLinearity) {
  // Aggregation is linear: FD check via directional derivative.
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(1);
  Matrix src(5, 4), dir(5, 4), dout(3, 4);
  src.randomize_gaussian(rng, 1.0f);
  dir.randomize_gaussian(rng, 1.0f);
  dout.randomize_gaussian(rng, 1.0f);

  Matrix out0;
  nn::mean_aggregate(adj, src, inv, out0);
  Matrix src_eps = src;
  ops::axpy(1e-3f, dir, src_eps);
  Matrix out1;
  nn::mean_aggregate(adj, src_eps, inv, out1);

  double fd = 0.0;
  for (std::int64_t i = 0; i < out0.size(); ++i)
    fd += (out1.data()[i] - out0.data()[i]) / 1e-3 * dout.data()[i];

  Matrix dsrc(5, 4);
  nn::mean_aggregate_backward(adj, dout, inv, dsrc);
  double analytic = 0.0;
  for (std::int64_t i = 0; i < dsrc.size(); ++i)
    analytic += static_cast<double>(dsrc.data()[i]) * dir.data()[i];
  EXPECT_NEAR(fd, analytic, 1e-2 * std::abs(analytic) + 1e-3);
}

/// Finite-difference gradient check of a layer: perturbs every entry of
/// every parameter and of the input features, comparing against the
/// analytic backward. Activation must be smooth at the sampled point, so
/// ReLU is disabled for the checked layers.
void check_layer_gradients(nn::Layer& layer, const BipartiteCsr& adj,
                           std::span<const float> inv_deg, Matrix feats,
                           float tol) {
  Rng rng(99);
  Matrix r(adj.n_dst, layer.d_out());
  r.randomize_gaussian(rng, 1.0f);

  const auto loss = [&](const Matrix& f) -> double {
    Matrix out =
        layer.forward(adj, f, inv_deg, /*training=*/false);
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i)
      acc += static_cast<double>(out.data()[i]) * r.data()[i];
    return acc;
  };

  // Analytic gradients.
  (void)loss(feats); // populate caches
  layer.zero_grads();
  const Matrix dfeats = layer.backward(adj, r, inv_deg);

  constexpr float kEps = 1e-2f;
  // Check input gradient on a sample of entries.
  for (std::int64_t i = 0; i < feats.size(); i += 3) {
    const float saved = feats.data()[i];
    feats.data()[i] = saved + kEps;
    const double up = loss(feats);
    feats.data()[i] = saved - kEps;
    const double down = loss(feats);
    feats.data()[i] = saved;
    const double fd = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(dfeats.data()[i], fd,
                tol * std::max(1.0, std::abs(fd)))
        << "dfeats entry " << i;
  }
  // Check parameter gradients on a sample of entries.
  auto params = layer.params();
  auto grads = layer.grads();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Matrix& p = *params[pi];
    const Matrix& g = *grads[pi];
    for (std::int64_t i = 0; i < p.size(); i += 5) {
      const float saved = p.data()[i];
      p.data()[i] = saved + kEps;
      const double up = loss(feats);
      p.data()[i] = saved - kEps;
      const double down = loss(feats);
      p.data()[i] = saved;
      const double fd = (up - down) / (2.0 * kEps);
      EXPECT_NEAR(g.data()[i], fd, tol * std::max(1.0, std::abs(fd)))
          << "param " << pi << " entry " << i;
    }
  }
}

TEST(SageLayer, GradientsMatchFiniteDifference) {
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(7);
  nn::SageLayer layer(4, 3, {.relu = false, .dropout = 0.0f}, rng);
  Matrix feats(5, 4);
  feats.randomize_gaussian(rng, 1.0f);
  check_layer_gradients(layer, adj, inv, std::move(feats), 2e-2f);
}

TEST(SageLayer, ReluClampsNegative) {
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(8);
  nn::SageLayer layer(2, 4, {.relu = true, .dropout = 0.0f}, rng);
  Matrix feats(5, 2);
  feats.randomize_gaussian(rng, 1.0f);
  const Matrix out = layer.forward(adj, feats, inv, false);
  for (const float v : out.flat()) EXPECT_GE(v, 0.0f);
}

TEST(SageLayer, DropoutOnlyInTraining) {
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(9);
  nn::SageLayer layer(2, 4, {.relu = false, .dropout = 0.5f}, rng);
  Matrix feats(5, 2);
  feats.randomize_gaussian(rng, 1.0f);
  const Matrix eval1 = layer.forward(adj, feats, inv, false);
  const Matrix eval2 = layer.forward(adj, feats, inv, false);
  EXPECT_LT(ops::max_abs_diff(eval1, eval2), 1e-7f); // eval is deterministic
  const Matrix train1 = layer.forward(adj, feats, inv, true);
  EXPECT_GT(ops::max_abs_diff(eval1, train1), 1e-4f); // dropout applied
}

TEST(SageLayer, ParamsShapes) {
  Rng rng(10);
  nn::SageLayer layer(8, 16, {}, rng);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->rows(), 16); // concat doubles the input dim
  EXPECT_EQ(params[0]->cols(), 16);
  EXPECT_EQ(params[1]->rows(), 1);
  EXPECT_EQ(layer.num_params(), 16 * 16 + 16);
}

TEST(GatLayer, GradientsMatchFiniteDifference) {
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(11);
  nn::GatLayer layer(3, 4,
                     {.heads = 1, .relu = false, .dropout = 0.0f}, rng);
  Matrix feats(5, 3);
  feats.randomize_gaussian(rng, 0.8f);
  check_layer_gradients(layer, adj, inv, std::move(feats), 4e-2f);
}

TEST(GatLayer, MultiHeadGradients) {
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(12);
  nn::GatLayer layer(3, 6,
                     {.heads = 2, .relu = false, .dropout = 0.0f}, rng);
  Matrix feats(5, 3);
  feats.randomize_gaussian(rng, 0.8f);
  check_layer_gradients(layer, adj, inv, std::move(feats), 4e-2f);
}

TEST(GatLayer, AttentionIsNormalized) {
  // With identical source rows, attention output equals W·h regardless of
  // neighborhood size (softmax weights sum to 1).
  const auto adj = small_adj();
  const auto inv = full_inv_deg(adj);
  Rng rng(13);
  nn::GatLayer layer(2, 2, {.heads = 1, .relu = false}, rng);
  Matrix feats(5, 2);
  for (NodeId u = 0; u < 5; ++u) {
    feats.at(u, 0) = 1.0f;
    feats.at(u, 1) = -0.5f;
  }
  const Matrix out = layer.forward(adj, feats, inv, false);
  // All destinations see identical inputs → identical outputs.
  for (std::int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(out.at(0, c), out.at(1, c), 1e-5f);
    EXPECT_NEAR(out.at(1, c), out.at(2, c), 1e-5f);
  }
}

TEST(GatLayer, RejectsIndivisibleHeads) {
  Rng rng(14);
  EXPECT_THROW(nn::GatLayer(3, 5, {.heads = 2}, rng), CheckError);
}

TEST(FlattenGrads, RoundTrip) {
  Rng rng(15);
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(
      std::make_unique<nn::SageLayer>(4, 3, nn::SageLayer::Options{}, rng));
  layers.push_back(
      std::make_unique<nn::SageLayer>(3, 2, nn::SageLayer::Options{}, rng));
  // Fill gradients with recognizable values.
  float fill = 1.0f;
  for (auto& l : layers)
    for (Matrix* g : l->grads()) {
      g->fill(fill);
      fill += 1.0f;
    }
  auto flat = nn::flatten_grads(layers);
  const std::size_t expect_size = static_cast<std::size_t>(
      (8 * 3 + 3) + (6 * 2 + 2));
  ASSERT_EQ(flat.size(), expect_size);
  // Scale and write back.
  for (auto& v : flat) v *= 2.0f;
  nn::apply_flat_grads(flat, layers);
  EXPECT_FLOAT_EQ(layers[0]->grads()[0]->at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(layers[1]->grads()[1]->at(0, 0), 8.0f);
}

} // namespace
} // namespace bnsgcn
