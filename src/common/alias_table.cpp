#include "common/alias_table.hpp"

#include <numeric>

#include "common/check.hpp"

namespace bnsgcn {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  BNSGCN_CHECK(n > 0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  BNSGCN_CHECK_MSG(total > 0.0, "alias table needs positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  normalized_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    BNSGCN_CHECK_MSG(weights[i] >= 0.0, "negative weight");
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<NodeId> small;
  std::vector<NodeId> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<NodeId>(i));
  }

  while (!small.empty() && !large.empty()) {
    const NodeId s = small.back();
    small.pop_back();
    const NodeId l = large.back();
    large.pop_back();
    prob_[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias_[static_cast<std::size_t>(s)] = l;
    scaled[static_cast<std::size_t>(l)] =
        scaled[static_cast<std::size_t>(l)] + scaled[static_cast<std::size_t>(s)] - 1.0;
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  // Residual buckets are full due to floating-point rounding.
  for (const NodeId i : large) prob_[static_cast<std::size_t>(i)] = 1.0;
  for (const NodeId i : small) prob_[static_cast<std::size_t>(i)] = 1.0;
}

NodeId AliasTable::sample(Rng& rng) const {
  const auto bucket =
      static_cast<std::size_t>(rng.next_below(prob_.size()));
  if (rng.next_double() < prob_[bucket]) return static_cast<NodeId>(bucket);
  return alias_[bucket];
}

} // namespace bnsgcn
