#include "nn/metrics.hpp"

namespace bnsgcn::nn {} // namespace bnsgcn::nn
