#include "api/serve.hpp"

#include <utility>

#include "api/multiprocess.hpp"
#include "api/partition_cache.hpp"
#include "common/check.hpp"

namespace bnsgcn::api {

namespace {

core::ServeOptions serve_options(const ServeConfig& scfg) {
  core::ServeOptions opts;
  opts.batch_size = scfg.batch_size;
  opts.num_batches = scfg.num_batches;
  opts.seed = scfg.seed;
  opts.record_logits = scfg.record_logits;
  opts.fail_rank = scfg.fail_rank;
  return opts;
}

/// Engine result -> report rows. method/dataset/train_wall_s are stamped
/// by the caller (under the forked runtime this runs in the child, which
/// does not know the training provenance).
ServeReport report_from_result(core::ServeResult&& res,
                               const ServeConfig& scfg) {
  ServeReport r;
  r.batch_size = scfg.batch_size;
  r.num_batches = scfg.num_batches;
  r.num_classes = res.num_classes;
  r.batches = std::move(res.batches);
  r.queries = std::move(res.queries);
  r.predictions = std::move(res.predictions);
  r.logits = std::move(res.logits);
  r.serve_wall_s = res.wall_time_s;
  r.timing = res.timing;
  return r;
}

/// Read `key` into `out` when present (absent keys keep the default).
template <typename T, typename Reader>
void read_if(const json::Value& v, const char* key, T& out, Reader read) {
  if (const auto* f = v.get(key)) out = read(*f);
}

const auto as_i = [](const json::Value& f) {
  return static_cast<int>(f.as_int64());
};
const auto as_i64 = [](const json::Value& f) { return f.as_int64(); };
const auto as_b = [](const json::Value& f) { return f.as_bool(); };

json::Value batch_to_json(const core::ServeBatchStats& b) {
  json::Value v = json::Value::object();
  v.set("latency_s", b.latency_s);
  v.set("comm_s", b.comm_s);
  v.set("feature_bytes", b.feature_bytes);
  v.set("control_bytes", b.control_bytes);
  // Written only when a halo cache ran (RunReport conventions).
  if (b.cache_hit_rows != 0 || b.cache_miss_rows != 0 || b.bytes_saved != 0) {
    v.set("cache_hit_rows", b.cache_hit_rows);
    v.set("cache_miss_rows", b.cache_miss_rows);
    v.set("bytes_saved", b.bytes_saved);
  }
  return v;
}

core::ServeBatchStats batch_from_json(const json::Value& v) {
  core::ServeBatchStats b;
  b.latency_s = v.at("latency_s").as_double();
  b.comm_s = v.at("comm_s").as_double();
  b.feature_bytes = v.at("feature_bytes").as_int64();
  b.control_bytes = v.at("control_bytes").as_int64();
  read_if(v, "cache_hit_rows", b.cache_hit_rows, as_i64);
  read_if(v, "cache_miss_rows", b.cache_miss_rows, as_i64);
  read_if(v, "bytes_saved", b.bytes_saved, as_i64);
  return b;
}

} // namespace

ServeReport serve(const Dataset& ds, const Partitioning& part,
                  const RunConfig& cfg, const ServeConfig& scfg) {
  const MethodInfo& info = resolve_method(cfg);
  BNSGCN_CHECK_MSG(info.method == Method::kBns,
                   "api::serve rides the partition-parallel engine: method "
                   "must be bns, got " + info.name);

  // Train on the in-process mailbox regardless of the serving transport:
  // trained weights are bit-identical across transports (the tier-1 parity
  // suites pin this), and the in-process run is what lets the snapshot be
  // captured without a serialization path.
  core::TrainerConfig tcfg = engine_config(cfg);
  core::WeightSnapshot snapshot;
  tcfg.capture_weights = &snapshot;
  core::TrainResult tr = core::BnsTrainer(ds, part, tcfg).train();
  BNSGCN_CHECK_MSG(!snapshot.empty(), "training produced no weight snapshot");
  tcfg.capture_weights = nullptr;
  tcfg.observer = nullptr;  // per-epoch callback is a training-only hook

  const core::ServeOptions opts = serve_options(scfg);
  core::InferenceEngine engine(ds, part, tcfg, snapshot);

  ServeReport report;
  if (cfg.comm.transport == comm::TransportKind::kMailbox) {
    report = report_from_result(engine.serve(opts), scfg);
  } else {
    // Socket transports fork one OS process per rank through the shared
    // piped-rank runtime; the engine (weights, local graphs) was built
    // pre-fork and is inherited copy-on-write.
    const std::string payload = run_ranks_piped(
        cfg.comm.transport, part.nparts, tcfg.cost,
        [&](comm::Fabric& fabric, PartId rank) {
          core::ServeResult res = engine.serve_rank(fabric, rank, opts);
          if (rank != 0) return std::string();
          return to_json_string(report_from_result(std::move(res), scfg));
        });
    report = serve_report_from_json_string(payload);
  }
  report.method = info.name;
  report.dataset = ds.name;
  report.train_wall_s = tr.wall_time_s;
  return report;
}

ServeReport serve(const Dataset& ds, const RunConfig& cfg,
                  const ServeConfig& scfg) {
  const std::shared_ptr<const Partitioning> part =
      partition_cache().get(ds.graph, cfg.partition);
  return serve(ds, *part, cfg, scfg);
}

ServeReport serve(const RunConfig& cfg, const ServeConfig& scfg) {
  const Dataset ds = make_dataset(cfg.dataset);
  return serve(ds, cfg, scfg);
}

json::Value to_json(const ServeConfig& scfg) {
  json::Value v = json::Value::object();
  v.set("batch_size", scfg.batch_size);
  v.set("num_batches", scfg.num_batches);
  v.set("seed", static_cast<std::int64_t>(scfg.seed));
  v.set("record_logits", scfg.record_logits);
  // fail_rank is test-only: not serialized.
  return v;
}

ServeConfig serve_config_from_json(const json::Value& v) {
  ServeConfig scfg;
  read_if(v, "batch_size", scfg.batch_size, as_i);
  read_if(v, "num_batches", scfg.num_batches, as_i);
  read_if(v, "seed", scfg.seed, [](const json::Value& f) {
    return static_cast<std::uint64_t>(f.as_int64());
  });
  read_if(v, "record_logits", scfg.record_logits, as_b);
  return scfg;
}

json::Value to_json(const ServeReport& r) {
  json::Value v = json::Value::object();
  v.set("method", r.method);
  v.set("dataset", r.dataset);
  v.set("batch_size", r.batch_size);
  v.set("num_batches", r.num_batches);
  v.set("num_classes", r.num_classes);
  v.set("train_wall_s", r.train_wall_s);
  v.set("serve_wall_s", r.serve_wall_s);
  // Written only for measured (socket-fabric) serves, RunReport style.
  if (r.timing == comm::TimingSource::kMeasured)
    v.set("timing_source", "measured");
  json::Value batches = json::Value::array();
  for (const auto& b : r.batches) batches.push_back(batch_to_json(b));
  v.set("batches", std::move(batches));
  json::Value queries = json::Value::array();
  for (const NodeId q : r.queries)
    queries.push_back(static_cast<std::int64_t>(q));
  v.set("queries", std::move(queries));
  json::Value preds = json::Value::array();
  for (const int p : r.predictions) preds.push_back(p);
  v.set("predictions", std::move(preds));
  // Logits only when recorded: floats widen to double and %.17g emission
  // round-trips them bit-exactly (the cross-transport determinism tests
  // compare logits that crossed this boundary).
  if (!r.logits.empty()) {
    json::Value logits = json::Value::array();
    for (const float f : r.logits)
      logits.push_back(static_cast<double>(f));
    v.set("logits", std::move(logits));
  }
  // Derived headline numbers, for consumers that only want the summary.
  json::Value derived = json::Value::object();
  derived.set("total_queries", r.total_queries());
  derived.set("p50_latency_s", r.p50_latency_s());
  derived.set("p99_latency_s", r.p99_latency_s());
  derived.set("qps", r.qps());
  if (r.cache_hit_rows() != 0 || r.cache_miss_rows() != 0) {
    derived.set("cache_hit_rows", r.cache_hit_rows());
    derived.set("cache_miss_rows", r.cache_miss_rows());
    derived.set("cache_bytes_saved", r.cache_bytes_saved());
    derived.set("cache_hit_rate", r.cache_hit_rate());
  }
  v.set("derived", std::move(derived));
  return v;
}

ServeReport serve_report_from_json(const json::Value& v) {
  ServeReport r;
  r.method = v.at("method").as_string();
  r.dataset = v.at("dataset").as_string();
  r.batch_size = static_cast<int>(v.at("batch_size").as_int64());
  r.num_batches = static_cast<int>(v.at("num_batches").as_int64());
  r.num_classes = static_cast<int>(v.at("num_classes").as_int64());
  r.train_wall_s = v.at("train_wall_s").as_double();
  r.serve_wall_s = v.at("serve_wall_s").as_double();
  if (const auto* ts = v.get("timing_source")) {
    const std::string s = ts->as_string();
    BNSGCN_CHECK_MSG(s == "measured" || s == "simulated",
                     "unknown timing_source: " + s);
    r.timing = s == "measured" ? comm::TimingSource::kMeasured
                               : comm::TimingSource::kSimulated;
  }
  for (const auto& b : v.at("batches").items())
    r.batches.push_back(batch_from_json(b));
  for (const auto& q : v.at("queries").items())
    r.queries.push_back(static_cast<NodeId>(q.as_int64()));
  for (const auto& p : v.at("predictions").items())
    r.predictions.push_back(static_cast<int>(p.as_int64()));
  if (const auto* logits = v.get("logits")) {
    for (const auto& f : logits->items())
      r.logits.push_back(static_cast<float>(f.as_double()));
  }
  // "derived" is recomputed from the stored fields by the accessors.
  return r;
}

std::string to_json_string(const ServeConfig& scfg, int indent) {
  return to_json(scfg).dump(indent);
}

ServeConfig serve_config_from_json_string(std::string_view text) {
  return serve_config_from_json(json::Value::parse(text));
}

std::string to_json_string(const ServeReport& r, int indent) {
  return to_json(r).dump(indent);
}

ServeReport serve_report_from_json_string(std::string_view text) {
  return serve_report_from_json(json::Value::parse(text));
}

} // namespace bnsgcn::api
